//! Experiment runner: builds (workload × prefetcher) simulations, caches
//! no-prefetcher baselines, and derives the paper's metrics.
//!
//! Two harnesses are provided:
//!
//! * [`Harness`] — the original serial runner, evaluating one cell at a
//!   time with a lazily-filled baseline cache;
//! * [`ParallelHarness`] — fans the (workload × prefetcher) grid out
//!   across a bounded pool of scoped worker threads. The grid is
//!   embarrassingly parallel (every cell is an independent simulation),
//!   so the full sweep's wall-clock shrinks to roughly
//!   `cells / min(jobs, cells)` serial cells.
//!
//! **Determinism.** A cell's result is a pure function of
//! `(RunScale::seed, workload, prefetcher kind)`: each cell constructs
//! its own instruction sources (seeded from `scale.seed`, with a per-core
//! stream split inside [`Workload::sources`]) and its own prefetcher, and
//! shares no mutable state with other cells. The prefetcher kind
//! deliberately does *not* perturb the workload's RNG stream — every
//! prefetcher must observe the exact access stream its no-prefetcher
//! baseline observed, or coverage and speedup would compare different
//! program runs. Consequently [`ParallelHarness`] produces bit-for-bit
//! the same [`SimResult`]s as [`Harness`] regardless of scheduling order,
//! worker count, or completion order — verified by the
//! `parallel_matches_serial_bit_for_bit` test below.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use bingo::{Bingo, BingoConfig, EventKind, MultiEventConfig, MultiEventPrefetcher};
use bingo_baselines::{
    Ampm, AmpmConfig, Bop, BopConfig, Sms, SmsConfig, Spp, SppConfig, StrideConfig,
    StridePrefetcher, Vldp, VldpConfig,
};
use bingo_sim::{
    ChaosInjector, CoverageReport, FaultPlan, FaultyPrefetcher, NextLinePrefetcher, NoPrefetcher,
    Prefetcher, SimAbort, SimResult, System, SystemConfig, TelemetryLevel, ThrottleMode,
};
use bingo_workloads::{TraceWorkload, Workload};

use crate::checkpoint::{Checkpoint, CHECKPOINT_ENV};
use crate::knobs;
use crate::mix::{FairnessReport, MixAssignment, MixConfig, Pressure};
use crate::stats_export::StatsExport;

/// Which prefetcher to attach to every core.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum PrefetcherKind {
    /// No prefetcher (baseline).
    None,
    /// Best-Offset prefetcher, paper configuration.
    Bop,
    /// BOP at degree 32 (Fig. 10 "Aggr").
    BopAggressive,
    /// Signature Path prefetcher, paper configuration.
    Spp,
    /// SPP at a 1 % confidence threshold (Fig. 10 "Aggr").
    SppAggressive,
    /// Variable-Length Delta prefetcher, paper configuration.
    Vldp,
    /// VLDP at degree 32 (Fig. 10 "Aggr").
    VldpAggressive,
    /// Access Map Pattern Matching.
    Ampm,
    /// Spatial Memory Streaming.
    Sms,
    /// Bingo, paper configuration (16 K-entry unified table).
    Bingo,
    /// Bingo with a non-default history size (Fig. 6 sweep).
    BingoEntries(usize),
    /// Bingo with a non-default footprint-voting threshold (ablation).
    BingoVote(f64),
    /// Single-event TAGE-like prefetcher (Fig. 2 sweep).
    SingleEvent(EventKind),
    /// Multi-event cascade over the first `n` events (Fig. 3 sweep; also
    /// the Fig. 4 redundancy vehicle at `n = 2`).
    MultiEvent(usize),
    /// Classic PC-stride prefetcher (reference).
    Stride,
    /// Next-line prefetcher with the given degree (reference).
    NextLine(usize),
    /// Bingo with seeded metadata corruption at the given per-event rate
    /// (fault-injection robustness experiments; see `bingo_sim::FaultPlan`).
    BingoFaulty {
        /// Seed of the fault injector's RNG stream (independent of the
        /// workload seed, so corruption varies while the access stream
        /// does not).
        fault_seed: u64,
        /// Probability applied to every fault class: footprint bit flips,
        /// history-entry drops, prefetch drops.
        rate: f64,
    },
    /// A prefetcher that deliberately panics after the given number of
    /// accesses — the test vehicle for panic-isolated sweeps.
    Faulty {
        /// Accesses observed before the deliberate panic.
        panic_after: u64,
    },
}

impl PrefetcherKind {
    /// The six prefetchers of the paper's headline comparison, figure
    /// order.
    pub const HEADLINE: [PrefetcherKind; 6] = [
        PrefetcherKind::Bop,
        PrefetcherKind::Spp,
        PrefetcherKind::Vldp,
        PrefetcherKind::Ampm,
        PrefetcherKind::Sms,
        PrefetcherKind::Bingo,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            PrefetcherKind::None => "None".into(),
            PrefetcherKind::Bop => "BOP".into(),
            PrefetcherKind::BopAggressive => "BOP-Aggr".into(),
            PrefetcherKind::Spp => "SPP".into(),
            PrefetcherKind::SppAggressive => "SPP-Aggr".into(),
            PrefetcherKind::Vldp => "VLDP".into(),
            PrefetcherKind::VldpAggressive => "VLDP-Aggr".into(),
            PrefetcherKind::Ampm => "AMPM".into(),
            PrefetcherKind::Sms => "SMS".into(),
            PrefetcherKind::Bingo => "Bingo".into(),
            PrefetcherKind::BingoEntries(n) => format!("Bingo-{}K", n / 1024),
            PrefetcherKind::BingoVote(t) => format!("Bingo-vote{:.0}%", t * 100.0),
            PrefetcherKind::SingleEvent(k) => k.label().into(),
            PrefetcherKind::MultiEvent(n) => format!("{n}-event"),
            PrefetcherKind::Stride => "Stride".into(),
            PrefetcherKind::NextLine(d) => format!("NextLine-{d}"),
            PrefetcherKind::BingoFaulty { rate, .. } => {
                format!("Bingo-fault{:.1}%", rate * 100.0)
            }
            PrefetcherKind::Faulty { panic_after } => format!("Faulty@{panic_after}"),
        }
    }

    /// Parses a mix-config prefetcher slug — the lowercase spelling used
    /// by `core … prefetcher=<slug>` lines. Only the fixed paper
    /// configurations are addressable from config files; parameterized
    /// kinds (entry sweeps, fault injection, …) stay programmatic.
    /// `None` for anything unrecognized, so the parser can report the
    /// bad name with its line number.
    pub fn from_slug(slug: &str) -> Option<PrefetcherKind> {
        Some(match slug {
            "none" => PrefetcherKind::None,
            "bop" => PrefetcherKind::Bop,
            "bop-aggr" => PrefetcherKind::BopAggressive,
            "spp" => PrefetcherKind::Spp,
            "spp-aggr" => PrefetcherKind::SppAggressive,
            "vldp" => PrefetcherKind::Vldp,
            "vldp-aggr" => PrefetcherKind::VldpAggressive,
            "ampm" => PrefetcherKind::Ampm,
            "sms" => PrefetcherKind::Sms,
            "bingo" => PrefetcherKind::Bingo,
            "stride" => PrefetcherKind::Stride,
            _ => return None,
        })
    }

    /// Builds one prefetcher instance.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetcher),
            PrefetcherKind::Bop => Box::new(Bop::new(BopConfig::paper())),
            PrefetcherKind::BopAggressive => Box::new(Bop::new(BopConfig::aggressive())),
            PrefetcherKind::Spp => Box::new(Spp::new(SppConfig::paper())),
            PrefetcherKind::SppAggressive => Box::new(Spp::new(SppConfig::aggressive())),
            PrefetcherKind::Vldp => Box::new(Vldp::new(VldpConfig::paper())),
            PrefetcherKind::VldpAggressive => Box::new(Vldp::new(VldpConfig::aggressive())),
            PrefetcherKind::Ampm => Box::new(Ampm::new(AmpmConfig::paper())),
            PrefetcherKind::Sms => Box::new(Sms::new(SmsConfig::paper())),
            PrefetcherKind::Bingo => Box::new(Bingo::new(BingoConfig::paper())),
            PrefetcherKind::BingoEntries(n) => {
                Box::new(Bingo::new(BingoConfig::with_history_entries(n)))
            }
            PrefetcherKind::BingoVote(t) => Box::new(Bingo::new(BingoConfig {
                vote_threshold: t,
                ..BingoConfig::paper()
            })),
            PrefetcherKind::SingleEvent(k) => {
                Box::new(MultiEventPrefetcher::new(MultiEventConfig::single(k)))
            }
            PrefetcherKind::MultiEvent(n) => {
                Box::new(MultiEventPrefetcher::new(MultiEventConfig::first_n(n)))
            }
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(StrideConfig::typical())),
            PrefetcherKind::NextLine(d) => Box::new(NextLinePrefetcher::new(d)),
            PrefetcherKind::BingoFaulty { fault_seed, rate } => Box::new(Bingo::with_faults(
                BingoConfig::paper(),
                FaultPlan::uniform(fault_seed, rate),
            )),
            PrefetcherKind::Faulty { panic_after } => Box::new(FaultyPrefetcher::new(panic_after)),
        }
    }

    /// Per-core metadata storage in bits, computed from the configuration
    /// alone. Building a prefetcher just to size it would allocate its
    /// tables — megabytes for Bingo's 16 K-entry history — on every call
    /// of the parallel sweep; the config-level accounting is free and
    /// asserted equal to the built value by a test.
    pub fn storage_bits(self) -> u64 {
        match self {
            PrefetcherKind::None => 0,
            PrefetcherKind::Bop => BopConfig::paper().storage_bits(),
            PrefetcherKind::BopAggressive => BopConfig::aggressive().storage_bits(),
            PrefetcherKind::Spp => SppConfig::paper().storage_bits(),
            PrefetcherKind::SppAggressive => SppConfig::aggressive().storage_bits(),
            PrefetcherKind::Vldp => VldpConfig::paper().storage_bits(),
            PrefetcherKind::VldpAggressive => VldpConfig::aggressive().storage_bits(),
            PrefetcherKind::Ampm => AmpmConfig::paper().storage_bits(),
            PrefetcherKind::Sms => SmsConfig::paper().storage_bits(),
            PrefetcherKind::Bingo => BingoConfig::paper().storage_bits(),
            PrefetcherKind::BingoEntries(n) => BingoConfig::with_history_entries(n).storage_bits(),
            PrefetcherKind::BingoVote(t) => BingoConfig {
                vote_threshold: t,
                ..BingoConfig::paper()
            }
            .storage_bits(),
            PrefetcherKind::SingleEvent(k) => MultiEventConfig::single(k).storage_bits(),
            PrefetcherKind::MultiEvent(n) => MultiEventConfig::first_n(n).storage_bits(),
            PrefetcherKind::Stride => StrideConfig::typical().storage_bits(),
            // Next-line keeps no metadata (trait default).
            PrefetcherKind::NextLine(_) => 0,
            // Fault injection corrupts Bingo's tables, it does not resize
            // them.
            PrefetcherKind::BingoFaulty { .. } => BingoConfig::paper().storage_bits(),
            // The panic vehicle keeps no metadata (trait default).
            PrefetcherKind::Faulty { .. } => 0,
        }
    }

    /// Per-core metadata storage in KB (for the performance-density model).
    pub fn storage_kb(self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1024.0
    }
}

/// Simulation scale for an experiment run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RunScale {
    /// Instructions retired per core in the measurement window.
    pub instructions_per_core: u64,
    /// Warmup instructions per core (caches and predictor tables live,
    /// statistics discarded) — the SimFlex warmed-checkpoint methodology.
    pub warmup_per_core: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunScale {
    /// The full scale used for the published numbers in EXPERIMENTS.md.
    pub fn full() -> Self {
        RunScale {
            instructions_per_core: 1_000_000,
            warmup_per_core: 1_500_000,
            seed: 42,
        }
    }

    /// A reduced scale for CI and Criterion.
    pub fn quick() -> Self {
        RunScale {
            instructions_per_core: 150_000,
            warmup_per_core: 100_000,
            seed: 42,
        }
    }

    /// Reads `--quick` from the process arguments (exact match, any
    /// position), then applies the `BINGO_WARMUP` / `BINGO_INSTR`
    /// environment overrides (development knobs for calibration sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `BINGO_WARMUP` or `BINGO_INSTR` is set but does not parse
    /// as an unsigned integer: a typo'd override must abort the run, not
    /// silently fall back to the full scale.
    pub fn from_args() -> Self {
        Self::from_parts(std::env::args().skip(1), |name| std::env::var(name).ok())
    }

    /// Testable core of [`RunScale::from_args`]: explicit argument list
    /// and environment lookup.
    fn from_parts<I, E>(args: I, env: E) -> Self
    where
        I: IntoIterator<Item = String>,
        E: Fn(&str) -> Option<String>,
    {
        let mut scale = if args.into_iter().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        };
        if let Some(v) = env("BINGO_WARMUP") {
            scale.warmup_per_core = parse_override("BINGO_WARMUP", &v);
        }
        if let Some(v) = env("BINGO_INSTR") {
            scale.instructions_per_core = parse_override("BINGO_INSTR", &v);
        }
        scale
    }
}

/// Parses a numeric environment override, aborting loudly on garbage.
fn parse_override(name: &str, value: &str) -> u64 {
    knobs::parse(name, value, "an unsigned integer", |v| v.parse().ok())
}

/// Environment variable selecting the prefetch-lifecycle telemetry level
/// for CLI sweeps: `off` (default), `counts`, or `trace`.
pub const TELEMETRY_ENV: &str = "BINGO_TELEMETRY";

/// Reads [`TELEMETRY_ENV`], aborting loudly on garbage — a typo'd level
/// must not silently run without telemetry.
///
/// # Panics
///
/// Panics if the variable is set but is not a recognized level.
pub fn telemetry_from_env() -> TelemetryLevel {
    knobs::from_env(
        TELEMETRY_ENV,
        "one of off/counts/trace",
        TelemetryLevel::parse,
    )
    .unwrap_or(TelemetryLevel::Off)
}

/// Environment variable selecting the prefetch-throttle mode for CLI
/// sweeps: `off` (default, bit-for-bit identical to a build without the
/// throttle subsystem), `static` (pinned conservative degree),
/// `feedback` (closed-loop accuracy/bandwidth control), or `percore`
/// (one feedback controller per core plus the starvation watchdog).
pub const THROTTLE_ENV: &str = "BINGO_THROTTLE";

/// Reads [`THROTTLE_ENV`], aborting loudly on garbage — a typo'd mode
/// must not silently run unthrottled.
///
/// # Panics
///
/// Panics if the variable is set but is not a recognized mode.
pub fn throttle_from_env() -> ThrottleMode {
    knobs::from_env(
        THROTTLE_ENV,
        "one of off/static/feedback/percore",
        ThrottleMode::parse,
    )
    .unwrap_or(ThrottleMode::Off)
}

/// Runs one (workload, prefetcher) simulation on the paper's 4-core
/// system, reporting deadline or cycle-limit aborts as values instead of
/// panicking.
///
/// # Errors
///
/// Returns [`SimAbort::DeadlineExceeded`] when a `deadline` is given and
/// the simulation's wall clock exceeds it, and [`SimAbort::CycleLimit`] on
/// a suspected livelock.
pub fn run_one_with_deadline(
    workload: Workload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
) -> Result<SimResult, SimAbort> {
    run_one_configured(
        workload,
        kind,
        scale,
        deadline,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    )
}

/// [`run_one_with_deadline`] with an explicit prefetch-lifecycle telemetry
/// level and throttle mode. Telemetry never perturbs the simulated machine
/// (test-locked by the sim crate's invisibility tests); it only populates
/// [`SimResult::telemetry`]. Throttling *does* change the machine (it is
/// the point), except [`ThrottleMode::Off`], which attaches no controller
/// and is bit-for-bit invisible.
///
/// # Errors
///
/// Same as [`run_one_with_deadline`].
pub fn run_one_configured(
    workload: Workload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> Result<SimResult, SimAbort> {
    let cfg = SystemConfig::paper();
    let sources = workload.sources(cfg.cores, scale.seed);
    let mut system =
        System::with_prefetchers(cfg, sources, |_| kind.build(), scale.instructions_per_core)
            .with_warmup(scale.warmup_per_core)
            .with_telemetry(telemetry)
            .with_throttle(throttle);
    if let Some(limit) = deadline {
        system = system.with_time_limit(limit);
    }
    system.try_run()
}

/// Runs one (workload, prefetcher) simulation on the paper's 4-core system.
///
/// # Panics
///
/// Panics on a suspected simulator livelock (cycle-limit abort), like
/// [`System::run`].
pub fn run_one(workload: Workload, kind: PrefetcherKind, scale: RunScale) -> SimResult {
    match run_one_with_deadline(workload, kind, scale, None) {
        Ok(result) => result,
        Err(SimAbort::CycleLimit { .. }) => panic!("simulation livelock suspected"),
        Err(abort) => panic!("{abort}"),
    }
}

/// How one sweep cell resolved. A fault-tolerant sweep never lets a cell
/// take down its siblings: a panicking prefetcher or a blown deadline
/// becomes a value here, reported at the end, while every other cell runs
/// to completion.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The simulation completed normally (boxed: a `SimResult` dwarfs the
    /// failure variants).
    Ok(Box<SimResult>),
    /// The cell's code panicked; the payload message is preserved for the
    /// failure report.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The cell exceeded the per-cell soft deadline.
    TimedOut {
        /// The deadline that was exceeded.
        limit: Duration,
    },
}

impl CellOutcome {
    /// Whether the cell completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }
}

/// Stringifies a panic payload: `&str` and `String` payloads (everything
/// `panic!` produces) verbatim, anything else a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "opaque panic payload".to_string())
    }
}

/// Runs one cell with panic isolation and an optional soft deadline: the
/// fault-tolerant core of the sweep. Never panics and never blocks past
/// the deadline (checked at instruction-batch granularity inside the
/// simulation loop) — every failure mode comes back as a [`CellOutcome`].
pub fn run_cell(
    workload: Workload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
) -> CellOutcome {
    run_cell_configured(
        workload,
        kind,
        scale,
        deadline,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    )
}

/// [`run_cell`] with an explicit telemetry level and throttle mode.
pub fn run_cell_configured(
    workload: Workload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> CellOutcome {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_one_configured(workload, kind, scale, deadline, telemetry, throttle)
    }));
    match attempt {
        Ok(Ok(result)) => CellOutcome::Ok(Box::new(result)),
        Ok(Err(SimAbort::DeadlineExceeded { limit })) => CellOutcome::TimedOut { limit },
        Ok(Err(abort @ SimAbort::CycleLimit { .. })) => CellOutcome::Panicked {
            message: abort.to_string(),
        },
        Err(payload) => CellOutcome::Panicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

/// The checkpoint key of a cell: everything that determines its
/// [`SimResult`] (see the determinism notes in the module docs). Two cells
/// with equal keys are interchangeable across process lifetimes.
pub fn cell_key(scale: RunScale, workload: Workload, kind: PrefetcherKind) -> String {
    format!(
        "{}/{}/{}/{:?}/{:?}",
        scale.seed, scale.instructions_per_core, scale.warmup_per_core, workload, kind
    )
}

/// [`cell_key`] extended with the telemetry level. A telemetry-off run
/// keeps the historical key unchanged, so checkpoints written before the
/// telemetry layer existed stay valid; telemetry-on runs get their own
/// namespace (their results carry the extra report, which a telemetry-off
/// resume must not replay).
pub fn cell_key_with_telemetry(
    scale: RunScale,
    workload: Workload,
    kind: PrefetcherKind,
    telemetry: TelemetryLevel,
) -> String {
    let base = cell_key(scale, workload, kind);
    match telemetry {
        TelemetryLevel::Off => base,
        TelemetryLevel::Counts => format!("{base}/telemetry=counts"),
        TelemetryLevel::Trace => format!("{base}/telemetry=trace"),
    }
}

/// [`cell_key_with_telemetry`] further extended with the throttle mode,
/// following the same namespacing rule: the default ([`ThrottleMode::Off`])
/// keeps the historical key byte-for-byte, so every checkpoint written
/// before the throttle subsystem existed stays valid, while throttled runs
/// — whose results genuinely differ — live in their own namespace and can
/// never be replayed into (or poisoned by) an unthrottled sweep.
pub fn cell_key_with_options(
    scale: RunScale,
    workload: Workload,
    kind: PrefetcherKind,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> String {
    let base = cell_key_with_telemetry(scale, workload, kind, telemetry);
    match throttle {
        ThrottleMode::Off => base,
        ThrottleMode::Static | ThrottleMode::Feedback | ThrottleMode::Percore => {
            format!("{base}/throttle={throttle}")
        }
    }
}

/// Runs one (captured trace, prefetcher) simulation on the paper's 4-core
/// system, replaying the trace's recorded instruction streams instead of
/// the synthetic generators.
///
/// The trace's per-core `.btrc` files are opened under the workload's
/// ingestion [`bingo_trace::Policy`]; a strict trace aborts the cell on the
/// first corrupt byte (the typed [`bingo_trace::ReadError`], byte offset
/// included, becomes the cell's panic message), while a lenient trace
/// quarantines damage and reports it in [`SimResult::ingest`].
///
/// # Errors
///
/// Same as [`run_one_configured`].
///
/// # Panics
///
/// Panics if the trace directory cannot be opened or a stream is corrupt
/// under the strict policy. Inside a sweep the panic is confined to the
/// cell by [`run_trace_cell`]'s isolation.
pub fn run_trace_one_configured(
    trace: &TraceWorkload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> Result<SimResult, SimAbort> {
    let cfg = SystemConfig::paper();
    let sources = trace
        .sources(cfg.cores)
        .unwrap_or_else(|e| panic!("trace workload {}: {e}", trace.name()));
    let mut system =
        System::with_prefetchers(cfg, sources, |_| kind.build(), scale.instructions_per_core)
            .with_warmup(scale.warmup_per_core)
            .with_telemetry(telemetry)
            .with_throttle(throttle);
    if let Some(limit) = deadline {
        system = system.with_time_limit(limit);
    }
    system.try_run()
}

/// [`run_cell_configured`] for a captured trace: panic isolation plus the
/// optional soft deadline. A corrupt strict trace therefore resolves to
/// [`CellOutcome::Panicked`] carrying the typed decode error (with its
/// byte offset) instead of taking down the sweep.
pub fn run_trace_cell(
    trace: &TraceWorkload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> CellOutcome {
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_trace_one_configured(trace, kind, scale, deadline, telemetry, throttle)
    }));
    match attempt {
        Ok(Ok(result)) => CellOutcome::Ok(Box::new(result)),
        Ok(Err(SimAbort::DeadlineExceeded { limit })) => CellOutcome::TimedOut { limit },
        Ok(Err(abort @ SimAbort::CycleLimit { .. })) => CellOutcome::Panicked {
            message: abort.to_string(),
        },
        Err(payload) => CellOutcome::Panicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

/// The checkpoint key of a trace-replay cell, namespaced apart from every
/// synthetic cell by the `trace:` prefix. The trace's own key
/// ([`TraceWorkload::key`]: path plus non-default policy) stands in for
/// the (workload, seed) pair — replay ignores [`RunScale::seed`] because
/// the instruction stream is fully determined by the recorded bytes, so
/// including the seed would only split identical results across checkpoint
/// entries. Telemetry and throttle extend the key under the same rules as
/// [`cell_key_with_options`].
pub fn trace_cell_key(
    scale: RunScale,
    trace_key: &str,
    kind: PrefetcherKind,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> String {
    let base = format!(
        "trace:{}/{}/{}/{:?}",
        trace_key, scale.instructions_per_core, scale.warmup_per_core, kind
    );
    let base = match telemetry {
        TelemetryLevel::Off => base,
        TelemetryLevel::Counts => format!("{base}/telemetry=counts"),
        TelemetryLevel::Trace => format!("{base}/telemetry=trace"),
    };
    match throttle {
        ThrottleMode::Off => base,
        ThrottleMode::Static | ThrottleMode::Feedback | ThrottleMode::Percore => {
            format!("{base}/throttle={throttle}")
        }
    }
}

/// Worker count for parallel sweeps: the `BINGO_JOBS` environment override
/// when set, otherwise [`std::thread::available_parallelism`] (1 if that
/// cannot be determined).
///
/// # Panics
///
/// Panics if `BINGO_JOBS` is set but is not a positive integer.
pub fn default_jobs() -> usize {
    match knobs::from_env("BINGO_JOBS", "a positive integer", |v| {
        v.parse::<usize>().ok()
    }) {
        Some(jobs) => {
            assert!(jobs > 0, "BINGO_JOBS must be a positive integer, got 0");
            jobs
        }
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Runs `f(0), f(1), ..., f(n - 1)` on a bounded pool of at most `jobs`
/// scoped worker threads and returns the results in index order.
///
/// Workers pull indices from a shared atomic counter, so cells are load
/// balanced dynamically; results land in per-index slots, so the output
/// order is independent of completion order. With `jobs <= 1` (or a single
/// item) the calls run inline on the current thread.
///
/// # Panics
///
/// Panics if `jobs` is zero, or propagates a panic from `f`.
pub fn parallel_map<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    let workers = jobs.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                // A panic in another worker must not cascade here: lock
                // poisoning only records that *some* thread panicked, and
                // these per-index slots are written exactly once, so the
                // data is sound regardless. Clearing the poison lets every
                // healthy worker deliver its finished cell.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// Runs one isolated cell, optionally emitting a progress/timing line
/// (cell name, wall seconds, simulated instructions per wall second or the
/// failure mode).
fn timed_cell(
    workload: Workload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
    progress: bool,
) -> CellOutcome {
    let start = Instant::now();
    let outcome = run_cell_configured(workload, kind, scale, deadline, telemetry, throttle);
    if progress {
        let wall = start.elapsed().as_secs_f64();
        let status = match &outcome {
            CellOutcome::Ok(result) => format!(
                "{:>6.2} Minstr/s",
                result.instructions() as f64 / wall.max(1e-9) / 1e6
            ),
            CellOutcome::Panicked { .. } => "PANICKED".to_string(),
            CellOutcome::TimedOut { .. } => "TIMED OUT".to_string(),
        };
        eprintln!(
            "[cell] {:<14} {:<14} {:>7.2}s  {status}",
            workload.name(),
            kind.name(),
            wall,
        );
    }
    outcome
}

/// [`timed_cell`] for a captured trace: same progress-line format, with
/// the trace's directory name in the workload column.
fn timed_trace_cell(
    trace: &TraceWorkload,
    kind: PrefetcherKind,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
    progress: bool,
) -> CellOutcome {
    let start = Instant::now();
    let outcome = run_trace_cell(trace, kind, scale, deadline, telemetry, throttle);
    if progress {
        let wall = start.elapsed().as_secs_f64();
        let status = match &outcome {
            CellOutcome::Ok(result) => format!(
                "{:>6.2} Minstr/s",
                result.instructions() as f64 / wall.max(1e-9) / 1e6
            ),
            CellOutcome::Panicked { .. } => "PANICKED".to_string(),
            CellOutcome::TimedOut { .. } => "TIMED OUT".to_string(),
        };
        eprintln!(
            "[cell] {:<14} {:<14} {:>7.2}s  {status}",
            trace.name(),
            kind.name(),
            wall,
        );
    }
    outcome
}

/// Serial runner with per-workload baseline caching.
#[derive(Debug, Default)]
pub struct Harness {
    scale: RunScale,
    baselines: HashMap<Workload, SimResult>,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale::full()
    }
}

impl Harness {
    /// Creates a harness at the given scale.
    pub fn new(scale: RunScale) -> Self {
        Harness {
            scale,
            baselines: HashMap::new(),
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// The cached no-prefetcher baseline for a workload.
    pub fn baseline(&mut self, workload: Workload) -> &SimResult {
        let scale = self.scale;
        self.baselines
            .entry(workload)
            .or_insert_with(|| run_one(workload, PrefetcherKind::None, scale))
    }

    /// Runs a prefetcher on a workload and reports coverage/overprediction
    /// against the cached baseline, plus the speedup.
    pub fn evaluate(&mut self, workload: Workload, kind: PrefetcherKind) -> Evaluation {
        let result = run_one(workload, kind, self.scale);
        let baseline = self.baseline(workload).clone();
        let coverage = CoverageReport::from_runs(&result, &baseline);
        let speedup = result.speedup_over(&baseline);
        Evaluation {
            workload,
            kind,
            coverage,
            speedup,
            result,
            baseline,
        }
    }
}

/// Parallel experiment harness: evaluates (workload × prefetcher) grids on
/// a bounded worker pool, computing each workload's no-prefetcher baseline
/// exactly once in a shared cache.
///
/// Results are bit-for-bit identical to [`Harness`] — see the module docs
/// for the determinism argument.
#[derive(Debug)]
pub struct ParallelHarness {
    scale: RunScale,
    jobs: usize,
    progress: bool,
    cell_timeout: Option<Duration>,
    checkpoint: Option<Checkpoint>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
    stats: Option<StatsExport>,
    baselines: HashMap<Workload, SimResult>,
    trace_baselines: HashMap<String, SimResult>,
    mix_solos: HashMap<String, SimResult>,
}

/// Parses the `BINGO_CELL_TIMEOUT` value (seconds, fractional allowed),
/// aborting loudly on garbage — a typo'd deadline must not silently run
/// unlimited.
fn parse_cell_timeout(value: &str) -> Duration {
    let secs: f64 = knobs::parse(CELL_TIMEOUT_ENV, value, "a number of seconds", |v| {
        v.parse().ok()
    });
    assert!(
        secs.is_finite() && secs >= 0.0,
        "{CELL_TIMEOUT_ENV} must be a non-negative number of seconds, got {value:?}"
    );
    Duration::from_secs_f64(secs)
}

/// Environment variable holding the per-cell soft deadline in seconds.
pub const CELL_TIMEOUT_ENV: &str = "BINGO_CELL_TIMEOUT";

impl ParallelHarness {
    /// Creates a parallel harness at the given scale with
    /// [`default_jobs`] workers, honoring the `BINGO_CELL_TIMEOUT`
    /// (per-cell deadline, seconds), `BINGO_CHECKPOINT` (resume file),
    /// `BINGO_TELEMETRY` (prefetch-lifecycle telemetry level),
    /// `BINGO_THROTTLE` (adaptive prefetch-throttle mode), and
    /// `BINGO_STATS` (machine-readable stats export) environment knobs.
    /// The explicit constructors ([`ParallelHarness::with_jobs`] +
    /// builders) ignore the environment so tests stay hermetic.
    ///
    /// # Panics
    ///
    /// Panics if `BINGO_CELL_TIMEOUT` is set but not a non-negative number
    /// of seconds, if `BINGO_CHECKPOINT` or `BINGO_STATS` names an
    /// unopenable file, if `BINGO_TELEMETRY` is not a recognized level, or
    /// if `BINGO_THROTTLE` is not a recognized mode.
    pub fn new(scale: RunScale) -> Self {
        let mut harness = Self::with_jobs(scale, default_jobs());
        harness.telemetry = telemetry_from_env();
        harness.throttle = throttle_from_env();
        harness.stats = StatsExport::from_env();
        if let Ok(v) = std::env::var(CELL_TIMEOUT_ENV) {
            harness.cell_timeout = Some(parse_cell_timeout(&v));
        }
        if let Ok(path) = std::env::var(CHECKPOINT_ENV) {
            let checkpoint = Checkpoint::open(&path)
                .unwrap_or_else(|e| panic!("{CHECKPOINT_ENV}: cannot open {path:?}: {e}"));
            if checkpoint.skipped_lines() > 0 {
                eprintln!(
                    "[checkpoint] {}: loaded {} cell(s), skipped {} corrupt line(s)",
                    path,
                    checkpoint.len(),
                    checkpoint.skipped_lines()
                );
            }
            harness.checkpoint = Some(checkpoint);
        }
        harness
    }

    /// Creates a parallel harness with an explicit worker count and no
    /// timeout/checkpoint (environment ignored).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_jobs(scale: RunScale, jobs: usize) -> Self {
        assert!(jobs > 0, "need at least one worker");
        ParallelHarness {
            scale,
            jobs,
            progress: true,
            cell_timeout: None,
            checkpoint: None,
            telemetry: TelemetryLevel::Off,
            throttle: ThrottleMode::Off,
            stats: None,
            baselines: HashMap::new(),
            trace_baselines: HashMap::new(),
            mix_solos: HashMap::new(),
        }
    }

    /// Disables the per-cell progress/timing lines on stderr.
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Sets a per-cell soft deadline: any cell whose simulation wall clock
    /// exceeds it resolves to [`CellOutcome::TimedOut`] instead of
    /// blocking the sweep.
    pub fn with_cell_timeout(mut self, limit: Duration) -> Self {
        self.cell_timeout = Some(limit);
        self
    }

    /// Attaches a checkpoint: completed cells are made durable as they
    /// finish, and cells (or baselines) already in the checkpoint are
    /// replayed from it instead of re-simulated.
    pub fn with_checkpoint(mut self, checkpoint: Checkpoint) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Sets the prefetch-lifecycle telemetry level for every cell
    /// (baselines included). Telemetry never changes the simulated
    /// machine; it adds a [`bingo_sim::TelemetryReport`] to each result
    /// and namespaces the checkpoint keys (see [`cell_key_with_telemetry`]).
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// The telemetry level in use.
    pub fn telemetry(&self) -> TelemetryLevel {
        self.telemetry
    }

    /// Sets the prefetch-throttle mode for every cell. Baselines run with
    /// [`PrefetcherKind::None`] and are unaffected by construction (there
    /// is nothing to throttle), but their checkpoint keys are still
    /// namespaced with the mode so a throttled sweep never replays into an
    /// unthrottled one. [`ThrottleMode::Off`] (the default) attaches no
    /// controller and keeps historical keys and results byte-for-byte.
    pub fn with_throttle(mut self, mode: ThrottleMode) -> Self {
        self.throttle = mode;
        self
    }

    /// The throttle mode in use.
    pub fn throttle(&self) -> ThrottleMode {
        self.throttle
    }

    /// Attaches a machine-readable stats export: every completed cell and
    /// baseline (checkpoint replays included) is written as one JSON line.
    pub fn with_stats_export(mut self, export: StatsExport) -> Self {
        self.stats = Some(export);
        self
    }

    /// The scale in use.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// The worker count in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Ensures the no-prefetcher baseline of every listed workload is
    /// cached, computing the missing ones in parallel — each exactly once,
    /// regardless of how many cells reference it.
    ///
    /// # Panics
    ///
    /// Panics if a baseline simulation fails (panics or exceeds the cell
    /// deadline); [`ParallelHarness::try_evaluate_grid`] reports such
    /// failures as values instead.
    pub fn prime_baselines(&mut self, workloads: &[Workload]) {
        let (failures, _) = self.try_prime_baselines(workloads);
        if let Some(f) = failures.first() {
            panic!("baseline for {} failed: {}", f.workload.name(), f.reason);
        }
    }

    /// Fault-tolerant baseline priming: failed baselines come back as
    /// [`CellFailure`]s (kind [`PrefetcherKind::None`]) instead of
    /// panicking. Returns the failures plus the number of baselines
    /// replayed from the checkpoint.
    fn try_prime_baselines(&mut self, workloads: &[Workload]) -> (Vec<CellFailure>, usize) {
        let mut missing: Vec<Workload> = Vec::new();
        for &w in workloads {
            if !self.baselines.contains_key(&w) && !missing.contains(&w) {
                missing.push(w);
            }
        }
        let scale = self.scale;
        let telemetry = self.telemetry;
        let throttle = self.throttle;
        let mut hits = 0;
        if let Some(cp) = &self.checkpoint {
            missing.retain(|&w| {
                match cp.get(&cell_key_with_options(
                    scale,
                    w,
                    PrefetcherKind::None,
                    telemetry,
                    throttle,
                )) {
                    Some(result) => {
                        self.baselines.insert(w, result);
                        hits += 1;
                        false
                    }
                    None => true,
                }
            });
        }
        if missing.is_empty() {
            return (Vec::new(), hits);
        }
        let progress = self.progress;
        let deadline = self.cell_timeout;
        let outcomes = parallel_map(self.jobs, missing.len(), |i| {
            timed_cell(
                missing[i],
                PrefetcherKind::None,
                scale,
                deadline,
                telemetry,
                throttle,
                progress,
            )
        });
        let mut failures = Vec::new();
        for (w, outcome) in missing.into_iter().zip(outcomes) {
            match outcome {
                CellOutcome::Ok(result) => {
                    self.record_checkpoint(w, PrefetcherKind::None, &result);
                    self.baselines.insert(w, *result);
                }
                failed => failures.push(CellFailure::new(w, PrefetcherKind::None, &failed)),
            }
        }
        (failures, hits)
    }

    /// Appends a completed cell to the checkpoint, if one is attached.
    /// Write errors degrade the checkpoint (the cell will re-run on
    /// resume), never the sweep.
    fn record_checkpoint(&self, workload: Workload, kind: PrefetcherKind, result: &SimResult) {
        if let Some(cp) = &self.checkpoint {
            let key =
                cell_key_with_options(self.scale, workload, kind, self.telemetry, self.throttle);
            if let Err(e) = cp.record(&key, result) {
                eprintln!("[checkpoint] write for {key} failed: {e}");
            }
        }
    }

    /// Appends a completed cell to the stats export, if one is attached.
    /// Write errors degrade the export, never the sweep.
    fn record_stats(&self, workload: Workload, kind: PrefetcherKind, result: &SimResult) {
        if let Some(stats) = &self.stats {
            let key =
                cell_key_with_options(self.scale, workload, kind, self.telemetry, self.throttle);
            if let Err(e) = stats.record(&key, result) {
                eprintln!("[stats] write for {key} failed: {e}");
            }
        }
    }

    /// The cached no-prefetcher baseline for a workload.
    pub fn baseline(&mut self, workload: Workload) -> &SimResult {
        self.prime_baselines(&[workload]);
        &self.baselines[&workload]
    }

    /// Evaluates every (workload, prefetcher) cell of `cells` across the
    /// worker pool and returns the evaluations in input order.
    ///
    /// # Panics
    ///
    /// Panics — after completing every healthy cell and printing the full
    /// failure report to stderr — if any cell failed. Callers that want
    /// the failures as data use [`ParallelHarness::try_evaluate_grid`].
    pub fn evaluate_grid(&mut self, cells: &[(Workload, PrefetcherKind)]) -> Vec<Evaluation> {
        self.try_evaluate_grid(cells).into_complete()
    }

    /// Fault-tolerant grid evaluation: every cell runs panic-isolated and
    /// deadline-bounded, so one bad cell cannot abort the sweep. The
    /// report carries an evaluation slot per input cell (in input order;
    /// `None` where the cell failed) plus one [`CellFailure`] per failed
    /// cell or baseline. With a checkpoint attached, completed cells are
    /// made durable immediately and already-recorded cells are replayed
    /// without re-simulation.
    pub fn try_evaluate_grid(&mut self, cells: &[(Workload, PrefetcherKind)]) -> GridReport {
        let workloads: Vec<Workload> = cells.iter().map(|&(w, _)| w).collect();
        let (mut failures, mut checkpoint_hits) = self.try_prime_baselines(&workloads);
        let failed_baselines: Vec<Workload> = failures.iter().map(|f| f.workload).collect();
        let scale = self.scale;
        let progress = self.progress;
        let deadline = self.cell_timeout;
        let telemetry = self.telemetry;
        let throttle = self.throttle;
        let started = Instant::now();

        // Resolve what we can without simulating: cells whose baseline is
        // gone (nothing to compare against) and cells already in the
        // checkpoint.
        let mut resolved: Vec<Option<CellOutcome>> = cells
            .iter()
            .map(|&(w, k)| {
                if failed_baselines.contains(&w) {
                    return Some(CellOutcome::Panicked {
                        message: format!("not run: the {} no-prefetcher baseline failed", w.name()),
                    });
                }
                if let Some(cp) = &self.checkpoint {
                    if let Some(result) =
                        cp.get(&cell_key_with_options(scale, w, k, telemetry, throttle))
                    {
                        checkpoint_hits += 1;
                        return Some(CellOutcome::Ok(Box::new(result)));
                    }
                }
                None
            })
            .collect();

        let todo: Vec<usize> = (0..cells.len())
            .filter(|&i| resolved[i].is_none())
            .collect();
        let outcomes = parallel_map(self.jobs, todo.len(), |j| {
            let (w, k) = cells[todo[j]];
            timed_cell(w, k, scale, deadline, telemetry, throttle, progress)
        });
        for (&i, outcome) in todo.iter().zip(outcomes) {
            if let CellOutcome::Ok(result) = &outcome {
                let (w, k) = cells[i];
                self.record_checkpoint(w, k, result);
            }
            resolved[i] = Some(outcome);
        }
        if progress && cells.len() > 1 {
            eprintln!(
                "[grid] {} cells in {:.1}s on {} worker(s)",
                cells.len(),
                started.elapsed().as_secs_f64(),
                self.jobs.min(cells.len()),
            );
        }

        let evaluations: Vec<Option<Evaluation>> = cells
            .iter()
            .zip(resolved)
            .map(|(&(workload, kind), outcome)| {
                let outcome = outcome.expect("every cell was resolved or run");
                match outcome {
                    CellOutcome::Ok(result) => {
                        let baseline = self.baselines[&workload].clone();
                        let coverage = CoverageReport::from_runs(&result, &baseline);
                        let speedup = result.speedup_over(&baseline);
                        Some(Evaluation {
                            workload,
                            kind,
                            coverage,
                            speedup,
                            result: *result,
                            baseline,
                        })
                    }
                    failed => {
                        failures.push(CellFailure::new(workload, kind, &failed));
                        None
                    }
                }
            })
            .collect();
        self.export_stats(cells, &failed_baselines, &evaluations);
        GridReport {
            evaluations,
            failures,
            checkpoint_hits,
        }
    }

    /// Writes the grid's machine-readable stats, if an export is attached:
    /// each unique baseline once (first-occurrence order), then every
    /// completed cell in input order. Checkpoint replays are included, so
    /// the export is always the complete grid; the export itself
    /// deduplicates keys across repeated grids.
    fn export_stats(
        &self,
        cells: &[(Workload, PrefetcherKind)],
        failed_baselines: &[Workload],
        evaluations: &[Option<Evaluation>],
    ) {
        if self.stats.is_none() {
            return;
        }
        let mut seen: Vec<Workload> = Vec::new();
        for &(w, _) in cells {
            if !seen.contains(&w) && !failed_baselines.contains(&w) {
                seen.push(w);
                if let Some(baseline) = self.baselines.get(&w) {
                    self.record_stats(w, PrefetcherKind::None, baseline);
                }
            }
        }
        for e in evaluations.iter().flatten() {
            self.record_stats(e.workload, e.kind, &e.result);
        }
    }

    /// Row-major convenience over [`ParallelHarness::evaluate_grid`]:
    /// every kind on every workload, grouped by workload (the result for
    /// `workloads[i]` × `kinds[j]` is at index `i * kinds.len() + j`).
    pub fn evaluate_all(
        &mut self,
        workloads: &[Workload],
        kinds: &[PrefetcherKind],
    ) -> Vec<Evaluation> {
        let cells: Vec<(Workload, PrefetcherKind)> = workloads
            .iter()
            .flat_map(|&w| kinds.iter().map(move |&k| (w, k)))
            .collect();
        self.evaluate_grid(&cells)
    }

    /// Evaluates a single cell (uses the shared baseline cache).
    pub fn evaluate(&mut self, workload: Workload, kind: PrefetcherKind) -> Evaluation {
        self.evaluate_grid(&[(workload, kind)])
            .pop()
            .expect("one cell in, one evaluation out")
    }

    /// Appends a completed trace cell to the checkpoint, if one is
    /// attached; write errors degrade the checkpoint, never the sweep.
    fn record_trace_checkpoint(
        &self,
        trace: &TraceWorkload,
        kind: PrefetcherKind,
        result: &SimResult,
    ) {
        if let Some(cp) = &self.checkpoint {
            let key = trace_cell_key(
                self.scale,
                &trace.key(),
                kind,
                self.telemetry,
                self.throttle,
            );
            if let Err(e) = cp.record(&key, result) {
                eprintln!("[checkpoint] write for {key} failed: {e}");
            }
        }
    }

    /// Appends a completed trace cell to the stats export, if one is
    /// attached; write errors degrade the export, never the sweep.
    fn record_trace_stats(&self, trace: &TraceWorkload, kind: PrefetcherKind, result: &SimResult) {
        if let Some(stats) = &self.stats {
            let key = trace_cell_key(
                self.scale,
                &trace.key(),
                kind,
                self.telemetry,
                self.throttle,
            );
            if let Err(e) = stats.record(&key, result) {
                eprintln!("[stats] write for {key} failed: {e}");
            }
        }
    }

    /// The cached no-prefetcher baseline for a captured trace, keyed by
    /// [`TraceWorkload::key`] (two handles to the same capture under the
    /// same policy share one baseline).
    ///
    /// # Panics
    ///
    /// Panics if the baseline replay fails (corrupt strict trace, panic,
    /// or exceeded cell deadline); [`ParallelHarness::try_evaluate_trace_grid`]
    /// reports such failures as values instead.
    pub fn trace_baseline(&mut self, trace: &TraceWorkload) -> &SimResult {
        let report = self.try_evaluate_trace_grid(std::slice::from_ref(trace), &[]);
        if let Some(f) = report.failures.first() {
            panic!("baseline for trace {} failed: {}", f.trace, f.reason);
        }
        &self.trace_baselines[&trace.key()]
    }

    /// Row-major (trace × kind) sweep over captured traces, mirroring
    /// [`ParallelHarness::evaluate_all`]: every kind replayed on every
    /// trace, each trace's no-prefetcher baseline computed exactly once.
    ///
    /// # Panics
    ///
    /// Panics — after completing every healthy cell and printing the full
    /// failure report to stderr — if any cell failed. Callers that want
    /// the failures as data use
    /// [`ParallelHarness::try_evaluate_trace_grid`].
    pub fn evaluate_trace_grid(
        &mut self,
        traces: &[TraceWorkload],
        kinds: &[PrefetcherKind],
    ) -> Vec<TraceEvaluation> {
        self.try_evaluate_trace_grid(traces, kinds).into_complete()
    }

    /// Fault-tolerant trace sweep: every replay cell runs panic-isolated
    /// and deadline-bounded, so one corrupt or slow trace cannot abort the
    /// sweep. Strict-policy decode errors surface as [`TraceCellFailure`]s
    /// carrying the typed error message (byte offset included); lenient
    /// traces complete with their quarantine tallies in
    /// [`SimResult::ingest`]. Checkpointing and stats export work exactly
    /// as in [`ParallelHarness::try_evaluate_grid`], under
    /// [`trace_cell_key`]'s `trace:`-prefixed namespace.
    pub fn try_evaluate_trace_grid(
        &mut self,
        traces: &[TraceWorkload],
        kinds: &[PrefetcherKind],
    ) -> TraceGridReport {
        let scale = self.scale;
        let telemetry = self.telemetry;
        let throttle = self.throttle;
        let deadline = self.cell_timeout;
        let progress = self.progress;
        let started = Instant::now();
        let mut failures: Vec<TraceCellFailure> = Vec::new();
        let mut checkpoint_hits = 0;

        // Prime the per-trace baselines: checkpoint replay first, then one
        // simulation per distinct trace key.
        let mut missing: Vec<usize> = Vec::new();
        for (i, t) in traces.iter().enumerate() {
            let key = t.key();
            if self.trace_baselines.contains_key(&key)
                || missing.iter().any(|&j| traces[j].key() == key)
            {
                continue;
            }
            if let Some(cp) = &self.checkpoint {
                if let Some(result) = cp.get(&trace_cell_key(
                    scale,
                    &key,
                    PrefetcherKind::None,
                    telemetry,
                    throttle,
                )) {
                    self.trace_baselines.insert(key, result);
                    checkpoint_hits += 1;
                    continue;
                }
            }
            missing.push(i);
        }
        let outcomes = parallel_map(self.jobs, missing.len(), |j| {
            timed_trace_cell(
                &traces[missing[j]],
                PrefetcherKind::None,
                scale,
                deadline,
                telemetry,
                throttle,
                progress,
            )
        });
        let mut failed_baselines: Vec<String> = Vec::new();
        for (&i, outcome) in missing.iter().zip(outcomes) {
            let t = &traces[i];
            match outcome {
                CellOutcome::Ok(result) => {
                    self.record_trace_checkpoint(t, PrefetcherKind::None, &result);
                    self.trace_baselines.insert(t.key(), *result);
                }
                failed => {
                    failures.push(TraceCellFailure::new(t, PrefetcherKind::None, &failed));
                    failed_baselines.push(t.key());
                }
            }
        }

        // The grid itself, row-major: traces[i] × kinds[j] at
        // i * kinds.len() + j.
        let cells: Vec<(usize, PrefetcherKind)> = (0..traces.len())
            .flat_map(|i| kinds.iter().map(move |&k| (i, k)))
            .collect();
        let mut resolved: Vec<Option<CellOutcome>> = cells
            .iter()
            .map(|&(i, k)| {
                let t = &traces[i];
                if failed_baselines.contains(&t.key()) {
                    return Some(CellOutcome::Panicked {
                        message: format!("not run: the {} no-prefetcher baseline failed", t.name()),
                    });
                }
                if let Some(cp) = &self.checkpoint {
                    if let Some(result) =
                        cp.get(&trace_cell_key(scale, &t.key(), k, telemetry, throttle))
                    {
                        checkpoint_hits += 1;
                        return Some(CellOutcome::Ok(Box::new(result)));
                    }
                }
                None
            })
            .collect();
        let todo: Vec<usize> = (0..cells.len())
            .filter(|&i| resolved[i].is_none())
            .collect();
        let outcomes = parallel_map(self.jobs, todo.len(), |j| {
            let (i, k) = cells[todo[j]];
            timed_trace_cell(
                &traces[i], k, scale, deadline, telemetry, throttle, progress,
            )
        });
        for (&ci, outcome) in todo.iter().zip(outcomes) {
            if let CellOutcome::Ok(result) = &outcome {
                let (i, k) = cells[ci];
                self.record_trace_checkpoint(&traces[i], k, result);
            }
            resolved[ci] = Some(outcome);
        }
        if progress && cells.len() > 1 {
            eprintln!(
                "[grid] {} trace cells in {:.1}s on {} worker(s)",
                cells.len(),
                started.elapsed().as_secs_f64(),
                self.jobs.min(cells.len()),
            );
        }

        let evaluations: Vec<Option<TraceEvaluation>> = cells
            .iter()
            .zip(resolved)
            .map(|(&(i, kind), outcome)| {
                let t = &traces[i];
                let outcome = outcome.expect("every trace cell was resolved or run");
                match outcome {
                    CellOutcome::Ok(result) => {
                        let baseline = self.trace_baselines[&t.key()].clone();
                        let coverage = CoverageReport::from_runs(&result, &baseline);
                        let speedup = result.speedup_over(&baseline);
                        Some(TraceEvaluation {
                            trace: t.name().to_string(),
                            kind,
                            coverage,
                            speedup,
                            result: *result,
                            baseline,
                        })
                    }
                    failed => {
                        failures.push(TraceCellFailure::new(t, kind, &failed));
                        None
                    }
                }
            })
            .collect();

        if self.stats.is_some() {
            let mut seen: Vec<String> = Vec::new();
            for t in traces {
                let key = t.key();
                if !seen.contains(&key) && !failed_baselines.contains(&key) {
                    if let Some(baseline) = self.trace_baselines.get(&key) {
                        self.record_trace_stats(t, PrefetcherKind::None, baseline);
                    }
                    seen.push(key);
                }
            }
            for (e, &(i, _)) in evaluations.iter().zip(&cells) {
                if let Some(e) = e {
                    self.record_trace_stats(&traces[i], e.kind, &e.result);
                }
            }
        }
        TraceGridReport {
            evaluations,
            failures,
            checkpoint_hits,
        }
    }
}

/// The outcome of one prefetcher-on-workload evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Workload evaluated.
    pub workload: Workload,
    /// Prefetcher evaluated.
    pub kind: PrefetcherKind,
    /// Coverage / overprediction / accuracy vs the baseline.
    pub coverage: CoverageReport,
    /// Geometric-mean per-core speedup over the baseline.
    pub speedup: f64,
    /// The prefetching run.
    pub result: SimResult,
    /// The baseline run.
    pub baseline: SimResult,
}

impl Evaluation {
    /// Performance improvement as a fraction (paper's Fig. 8 metric).
    pub fn improvement(&self) -> f64 {
        self.speedup - 1.0
    }
}

/// One failed sweep cell: which cell, and why.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// Workload of the failed cell.
    pub workload: Workload,
    /// Prefetcher of the failed cell ([`PrefetcherKind::None`] for a
    /// failed no-prefetcher baseline).
    pub kind: PrefetcherKind,
    /// Human-readable failure reason, including the panic message or the
    /// exceeded deadline.
    pub reason: String,
}

impl CellFailure {
    fn new(workload: Workload, kind: PrefetcherKind, outcome: &CellOutcome) -> CellFailure {
        let reason = match outcome {
            CellOutcome::Ok(_) => unreachable!("successful cells are not failures"),
            CellOutcome::Panicked { message } => format!("panicked: {message}"),
            CellOutcome::TimedOut { limit } => {
                format!("timed out after {:.3}s", limit.as_secs_f64())
            }
        };
        CellFailure {
            workload,
            kind,
            reason,
        }
    }
}

/// The result of a fault-tolerant sweep: per-cell evaluations (in input
/// order, `None` where the cell failed) plus the collected failures.
#[derive(Debug)]
pub struct GridReport {
    /// One slot per input cell, input order; `None` for failed cells.
    pub evaluations: Vec<Option<Evaluation>>,
    /// Every failed cell and failed baseline, in discovery order.
    pub failures: Vec<CellFailure>,
    /// Cells and baselines replayed from the checkpoint instead of
    /// simulated.
    pub checkpoint_hits: usize,
}

impl GridReport {
    /// Whether every cell (and every baseline) completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of cells that produced an evaluation.
    pub fn completed(&self) -> usize {
        self.evaluations.iter().filter(|e| e.is_some()).count()
    }

    /// Requires every completed cell to have reported each named
    /// prefetcher metric, turning the silent `None` of
    /// [`SimResult::metric_sum`] into a listed [`CellFailure`]. A typo'd
    /// or renamed metric therefore shows up by name in the failure report
    /// (and fails [`GridReport::into_complete`]) instead of plotting as a
    /// silent zero.
    pub fn require_metrics(&mut self, names: &[&str]) {
        for e in self.evaluations.iter().flatten() {
            for &name in names {
                if e.result.metric_sum(name).is_none() {
                    self.failures.push(CellFailure {
                        workload: e.workload,
                        kind: e.kind,
                        reason: format!(
                            "metric {name:?} missing: {} reported no such metric",
                            e.kind.name()
                        ),
                    });
                }
            }
        }
    }

    /// The multi-line failure report: one line per failed cell with its
    /// workload, prefetcher, and reason. Empty string when clean.
    pub fn failure_report(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "FAILURE REPORT: {} of {} cell(s) completed, {} failure(s)\n",
            self.completed(),
            self.evaluations.len(),
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!(
                "  {} / {}: {}\n",
                f.workload.name(),
                f.kind.name(),
                f.reason
            ));
        }
        out
    }

    /// Unwraps a clean report into its evaluations.
    ///
    /// # Panics
    ///
    /// Panics — after printing the failure report to stderr — if any cell
    /// failed, turning a faulty sweep into a nonzero process exit *after*
    /// every healthy cell has completed and been checkpointed.
    pub fn into_complete(self) -> Vec<Evaluation> {
        if !self.failures.is_empty() {
            eprint!("{}", self.failure_report());
            panic!(
                "{} sweep cell(s) failed; see the failure report above",
                self.failures.len()
            );
        }
        self.evaluations
            .into_iter()
            .map(|e| e.expect("clean reports have every evaluation"))
            .collect()
    }
}

/// The outcome of one prefetcher-on-captured-trace evaluation. The
/// workload column is the trace's directory name (a string, not a
/// [`Workload`] — a replayed capture needs no generator).
#[derive(Clone, Debug)]
pub struct TraceEvaluation {
    /// Name of the replayed trace (its capture directory name).
    pub trace: String,
    /// Prefetcher evaluated.
    pub kind: PrefetcherKind,
    /// Coverage / overprediction / accuracy vs the trace's baseline.
    pub coverage: CoverageReport,
    /// Geometric-mean per-core speedup over the trace's baseline.
    pub speedup: f64,
    /// The prefetching replay (carries [`SimResult::ingest`]).
    pub result: SimResult,
    /// The no-prefetcher replay of the same trace.
    pub baseline: SimResult,
}

impl TraceEvaluation {
    /// Performance improvement as a fraction (paper's Fig. 8 metric).
    pub fn improvement(&self) -> f64 {
        self.speedup - 1.0
    }
}

/// One failed trace-replay cell: which trace, which prefetcher, and why
/// (for a corrupt strict trace the reason carries the typed decode error,
/// byte offset included).
#[derive(Clone, Debug)]
pub struct TraceCellFailure {
    /// Name of the trace of the failed cell.
    pub trace: String,
    /// Prefetcher of the failed cell ([`PrefetcherKind::None`] for a
    /// failed baseline replay).
    pub kind: PrefetcherKind,
    /// Human-readable failure reason.
    pub reason: String,
}

impl TraceCellFailure {
    fn new(trace: &TraceWorkload, kind: PrefetcherKind, outcome: &CellOutcome) -> TraceCellFailure {
        let reason = match outcome {
            CellOutcome::Ok(_) => unreachable!("successful cells are not failures"),
            CellOutcome::Panicked { message } => format!("panicked: {message}"),
            CellOutcome::TimedOut { limit } => {
                format!("timed out after {:.3}s", limit.as_secs_f64())
            }
        };
        TraceCellFailure {
            trace: trace.name().to_string(),
            kind,
            reason,
        }
    }
}

/// The result of a fault-tolerant trace sweep, mirroring [`GridReport`]:
/// per-cell evaluations in row-major input order (`None` where the cell
/// failed) plus the collected failures.
#[derive(Debug)]
pub struct TraceGridReport {
    /// One slot per (trace × kind) cell, row-major; `None` for failures.
    pub evaluations: Vec<Option<TraceEvaluation>>,
    /// Every failed cell and failed baseline, in discovery order.
    pub failures: Vec<TraceCellFailure>,
    /// Cells and baselines replayed from the checkpoint instead of
    /// simulated.
    pub checkpoint_hits: usize,
}

impl TraceGridReport {
    /// Whether every cell (and every baseline) completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of cells that produced an evaluation.
    pub fn completed(&self) -> usize {
        self.evaluations.iter().filter(|e| e.is_some()).count()
    }

    /// The multi-line failure report: one line per failed cell with its
    /// trace, prefetcher, and reason. Empty string when clean.
    pub fn failure_report(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "FAILURE REPORT: {} of {} trace cell(s) completed, {} failure(s)\n",
            self.completed(),
            self.evaluations.len(),
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!(
                "  {} / {}: {}\n",
                f.trace,
                f.kind.name(),
                f.reason
            ));
        }
        out
    }

    /// Unwraps a clean report into its evaluations.
    ///
    /// # Panics
    ///
    /// Panics — after printing the failure report to stderr — if any cell
    /// failed, after every healthy cell has completed and been
    /// checkpointed.
    pub fn into_complete(self) -> Vec<TraceEvaluation> {
        if !self.failures.is_empty() {
            eprint!("{}", self.failure_report());
            panic!(
                "{} trace sweep cell(s) failed; see the failure report above",
                self.failures.len()
            );
        }
        self.evaluations
            .into_iter()
            .map(|e| e.expect("clean reports have every evaluation"))
            .collect()
    }
}

/// Geometric mean over a nonempty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean over a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

// ---------------------------------------------------------------------------
// Multi-core mix cells
// ---------------------------------------------------------------------------

/// One cell of a multi-core mix grid: a declared [`MixConfig`] run at
/// `cores` cores under a memory-[`Pressure`] level. Core counts past the
/// declared slots replicate the mix pattern cyclically (see
/// [`MixConfig::assignment`]).
#[derive(Debug, Clone)]
pub struct MixCell {
    /// The declared mix.
    pub mix: MixConfig,
    /// Core count of this cell's machine.
    pub cores: usize,
    /// Memory-pressure level applied to the shared resources.
    pub pressure: Pressure,
}

/// Runs one declared mix on an N-core machine: per-core instruction
/// sources, prefetcher instances, and committed-instruction targets all
/// come from the mix's per-slot assignments, while the LLC, MSHR pool,
/// and DRAM channels stay at the paper machine's shared sizing (under
/// the given [`Pressure`]). A homogeneous mix at the paper's core count,
/// scale 100 %, and [`Pressure::NONE`] is bit-for-bit
/// [`run_one_configured`] by construction: identical sources, identical
/// per-core prefetchers, uniform targets.
///
/// # Errors
///
/// [`SimAbort`] if the optional deadline expires or the simulator trips
/// its internal cycle limit.
pub fn run_mix_configured(
    mix: &MixConfig,
    cores: usize,
    pressure: &Pressure,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> Result<SimResult, SimAbort> {
    assert!(cores > 0, "a mix machine needs at least one core");
    let mut cfg = SystemConfig::paper().with_cores(cores);
    pressure.apply(&mut cfg);
    let sources = (0..cores)
        .map(|i| mix.assignment(i).workload.source_for_core(i, scale.seed))
        .collect();
    let prefetchers = (0..cores)
        .map(|i| mix.assignment(i).prefetcher.build())
        .collect();
    let targets: Vec<u64> = (0..cores)
        .map(|i| mix.assignment(i).instructions(scale.instructions_per_core))
        .collect();
    let mut system = System::new_heterogeneous(cfg, sources, prefetchers, &targets)
        .with_warmup(scale.warmup_per_core)
        .with_telemetry(telemetry)
        .with_throttle(throttle);
    if let Some(limit) = deadline {
        system = system.with_time_limit(limit);
    }
    system.try_run()
}

/// [`run_mix_configured`] with the QoS extensions: an explicit
/// starvation-SLO override for [`ThrottleMode::Percore`] (falling back
/// to [`bingo_sim::DEFAULT_QOS_SLO`] when `None`) and an optional
/// [`ChaosInjector`] perturbing the live run. A `None`/`None` call is
/// bit-for-bit [`run_mix_configured`]: the config field stays at its
/// default and no injector is attached.
///
/// # Errors
///
/// Same as [`run_mix_configured`].
#[allow(clippy::too_many_arguments)]
pub fn run_mix_qos(
    mix: &MixConfig,
    cores: usize,
    pressure: &Pressure,
    scale: RunScale,
    deadline: Option<Duration>,
    throttle: ThrottleMode,
    qos_slo: Option<f64>,
    chaos: Option<ChaosInjector>,
) -> Result<SimResult, SimAbort> {
    assert!(cores > 0, "a mix machine needs at least one core");
    let mut cfg = SystemConfig::paper().with_cores(cores);
    pressure.apply(&mut cfg);
    cfg.qos_slo = qos_slo;
    let sources = (0..cores)
        .map(|i| mix.assignment(i).workload.source_for_core(i, scale.seed))
        .collect();
    let prefetchers = (0..cores)
        .map(|i| mix.assignment(i).prefetcher.build())
        .collect();
    let targets: Vec<u64> = (0..cores)
        .map(|i| mix.assignment(i).instructions(scale.instructions_per_core))
        .collect();
    let mut system = System::new_heterogeneous(cfg, sources, prefetchers, &targets)
        .with_warmup(scale.warmup_per_core)
        .with_throttle(throttle);
    if let Some(injector) = chaos {
        system = system.with_chaos(injector);
    }
    if let Some(limit) = deadline {
        system = system.with_time_limit(limit);
    }
    system.try_run()
}

/// Runs one mix slot *alone*: the identical instruction stream (same
/// slot index, so same seed and address space), prefetcher, and
/// instruction target as in the mix, but on a 1-core machine with the
/// whole shared memory system — same pressure level — to itself. The
/// fairness report's per-core slowdown is the ratio of this run's IPC to
/// the slot's IPC inside the mix.
///
/// # Errors
///
/// Same as [`run_mix_configured`].
pub fn run_mix_solo_configured(
    assignment: MixAssignment,
    slot: usize,
    pressure: &Pressure,
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> Result<SimResult, SimAbort> {
    let mut cfg = SystemConfig::paper().with_cores(1);
    pressure.apply(&mut cfg);
    let sources = vec![assignment.workload.source_for_core(slot, scale.seed)];
    let prefetchers = vec![assignment.prefetcher.build()];
    let targets = [assignment.instructions(scale.instructions_per_core)];
    let mut system = System::new_heterogeneous(cfg, sources, prefetchers, &targets)
        .with_warmup(scale.warmup_per_core)
        .with_telemetry(telemetry)
        .with_throttle(throttle);
    if let Some(limit) = deadline {
        system = system.with_time_limit(limit);
    }
    system.try_run()
}

/// Applies the mix-key namespacing suffixes shared by [`mix_cell_key`]
/// and [`mix_solo_key`]: [`Pressure::NONE`], [`TelemetryLevel::Off`],
/// and [`ThrottleMode::Off`] each contribute nothing, so default-mode
/// keys stay byte-for-byte stable across option additions — the same
/// rule [`cell_key_with_options`] follows.
fn decorate_mix_key(
    base: String,
    pressure: &Pressure,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> String {
    let base = format!("{base}{}", pressure.key_suffix());
    let base = match telemetry {
        TelemetryLevel::Off => base,
        TelemetryLevel::Counts => format!("{base}/telemetry=counts"),
        TelemetryLevel::Trace => format!("{base}/telemetry=trace"),
    };
    match throttle {
        ThrottleMode::Off => base,
        ThrottleMode::Static | ThrottleMode::Feedback | ThrottleMode::Percore => {
            format!("{base}/throttle={throttle}")
        }
    }
}

/// Checkpoint/stats key of one mix cell. The key embeds both the mix's
/// name and its full slot spec, so renaming a mix *or* editing its
/// assignments invalidates old checkpoint entries; it lives in the
/// `mix:` namespace, disjoint from single-workload (`{seed}/…`) and
/// trace (`trace:…`) keys, so mixed old/new checkpoint files resolve
/// every generation of cell correctly.
pub fn mix_cell_key(
    scale: RunScale,
    mix: &MixConfig,
    cores: usize,
    pressure: &Pressure,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> String {
    let base = format!(
        "mix:{}/{}/{}/{}@{}/{}",
        scale.seed,
        scale.instructions_per_core,
        scale.warmup_per_core,
        mix.name,
        cores,
        mix.spec()
    );
    decorate_mix_key(base, pressure, telemetry, throttle)
}

/// Checkpoint/stats key of one solo run. Deliberately *not* namespaced
/// by mix name: a solo run depends only on the slot assignment, so two
/// mixes sharing a slot share the solo simulation and its checkpoint
/// entry.
pub fn mix_solo_key(
    scale: RunScale,
    slot: usize,
    assignment: &MixAssignment,
    pressure: &Pressure,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
) -> String {
    let base = format!(
        "mix-solo:{}/{}/{}/{}",
        scale.seed,
        scale.instructions_per_core,
        scale.warmup_per_core,
        assignment.slot_spec(slot)
    );
    decorate_mix_key(base, pressure, telemetry, throttle)
}

/// The harness run settings shared by every cell of one mix sweep.
#[derive(Clone, Copy)]
struct MixRunSettings {
    scale: RunScale,
    deadline: Option<Duration>,
    telemetry: TelemetryLevel,
    throttle: ThrottleMode,
    progress: bool,
}

/// [`run_mix_configured`] with panic isolation: every failure mode comes
/// back as a [`CellOutcome`], with an optional `[cell]` progress line.
fn timed_mix_cell(
    mix: &MixConfig,
    cores: usize,
    pressure: &Pressure,
    s: MixRunSettings,
) -> CellOutcome {
    let label = format!("{}@{}", mix.name, cores);
    guarded_mix_cell(&label, pressure.name, s.progress, || {
        run_mix_configured(
            mix,
            cores,
            pressure,
            s.scale,
            s.deadline,
            s.telemetry,
            s.throttle,
        )
    })
}

/// [`run_mix_solo_configured`] with panic isolation and the same
/// progress-line format as [`timed_mix_cell`].
fn timed_mix_solo_cell(
    assignment: MixAssignment,
    slot: usize,
    pressure: &Pressure,
    s: MixRunSettings,
) -> CellOutcome {
    let label = format!("solo:{}", assignment.slot_spec(slot));
    guarded_mix_cell(&label, pressure.name, s.progress, || {
        run_mix_solo_configured(
            assignment,
            slot,
            pressure,
            s.scale,
            s.deadline,
            s.telemetry,
            s.throttle,
        )
    })
}

/// The shared panic-isolation + progress core of the mix cell runners.
fn guarded_mix_cell(
    label: &str,
    pressure: &str,
    progress: bool,
    run: impl FnOnce() -> Result<SimResult, SimAbort>,
) -> CellOutcome {
    let start = Instant::now();
    let attempt = catch_unwind(AssertUnwindSafe(run));
    let outcome = match attempt {
        Ok(Ok(result)) => CellOutcome::Ok(Box::new(result)),
        Ok(Err(SimAbort::DeadlineExceeded { limit })) => CellOutcome::TimedOut { limit },
        Ok(Err(abort @ SimAbort::CycleLimit { .. })) => CellOutcome::Panicked {
            message: abort.to_string(),
        },
        Err(payload) => CellOutcome::Panicked {
            message: panic_message(payload.as_ref()),
        },
    };
    if progress {
        let wall = start.elapsed().as_secs_f64();
        let status = match &outcome {
            CellOutcome::Ok(result) => format!(
                "{:>6.2} Minstr/s",
                result.instructions() as f64 / wall.max(1e-9) / 1e6
            ),
            CellOutcome::Panicked { .. } => "PANICKED".to_string(),
            CellOutcome::TimedOut { .. } => "TIMED OUT".to_string(),
        };
        eprintln!("[cell] {label:<28} {pressure:<14} {wall:>7.2}s  {status}");
    }
    outcome
}

/// The outcome of one completed mix cell.
#[derive(Clone, Debug)]
pub struct MixEvaluation {
    /// Name of the evaluated mix.
    pub mix_name: String,
    /// Core count of the cell's machine.
    pub cores: usize,
    /// Pressure level of the cell.
    pub pressure: Pressure,
    /// Per-core fairness: IPCs, aggregate, min/max ratio, slowdowns
    /// versus the solo runs.
    pub fairness: FairnessReport,
    /// The full mix run.
    pub result: SimResult,
}

/// One failed mix cell or solo run: which, and why.
#[derive(Clone, Debug)]
pub struct MixCellFailure {
    /// Name of the mix (for a solo failure: the mix(es) needing it are
    /// not listed; the slot spec below identifies the run).
    pub mix_name: String,
    /// Core count of the failed cell; for a solo failure, 1.
    pub cores: usize,
    /// Pressure level name.
    pub pressure: &'static str,
    /// `Some(slot spec)` when the failure was a solo run.
    pub solo: Option<String>,
    /// Human-readable failure reason.
    pub reason: String,
}

/// The result of a fault-tolerant mix sweep, mirroring [`GridReport`]:
/// per-cell evaluations in input order (`None` where the cell or one of
/// its solos failed) plus the collected failures.
#[derive(Debug)]
pub struct MixGridReport {
    /// One slot per input cell, input order; `None` for failed cells.
    pub evaluations: Vec<Option<MixEvaluation>>,
    /// Every failed mix cell and solo run, in discovery order.
    pub failures: Vec<MixCellFailure>,
    /// Cells and solos replayed from the checkpoint instead of
    /// simulated.
    pub checkpoint_hits: usize,
}

impl MixGridReport {
    /// Whether every cell (and every solo) completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of cells that produced an evaluation.
    pub fn completed(&self) -> usize {
        self.evaluations.iter().filter(|e| e.is_some()).count()
    }

    /// The multi-line failure report; empty string when clean.
    pub fn failure_report(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "FAILURE REPORT: {} of {} mix cell(s) completed, {} failure(s)\n",
            self.completed(),
            self.evaluations.len(),
            self.failures.len()
        );
        for f in &self.failures {
            let what = match &f.solo {
                Some(spec) => format!("solo {spec}"),
                None => format!("{}@{}", f.mix_name, f.cores),
            };
            out.push_str(&format!("  {what} / {}: {}\n", f.pressure, f.reason));
        }
        out
    }

    /// Unwraps a clean report into its evaluations.
    ///
    /// # Panics
    ///
    /// Panics — after printing the failure report to stderr — if any cell
    /// or solo failed, after every healthy cell has completed and been
    /// checkpointed (the same contract as [`GridReport::into_complete`]).
    pub fn into_complete(self) -> Vec<MixEvaluation> {
        if !self.failures.is_empty() {
            eprint!("{}", self.failure_report());
            panic!(
                "{} mix cell(s) failed; see the failure report above",
                self.failures.len()
            );
        }
        self.evaluations
            .into_iter()
            .map(|e| e.expect("clean reports have every evaluation"))
            .collect()
    }
}

impl ParallelHarness {
    /// Fault-tolerant multi-core mix sweep. For every cell the harness
    /// first ensures the solo run of each core slot exists (computed once
    /// per unique `(slot assignment, pressure)` across the whole grid,
    /// checkpoint-replayed when possible), then runs the N-core mix, and
    /// finally derives the cell's [`FairnessReport`] from the mix result
    /// and its solos. Mix cells use `mix:`-namespaced checkpoint/stats
    /// keys, solos `mix-solo:` — both disjoint from the single-workload
    /// and trace namespaces, so one checkpoint file can carry all three
    /// generations of cell and a mixed old/new file retries only what is
    /// actually missing.
    pub fn try_evaluate_mix_grid(&mut self, cells: &[MixCell]) -> MixGridReport {
        let scale = self.scale;
        let telemetry = self.telemetry;
        let throttle = self.throttle;
        let settings = MixRunSettings {
            scale,
            deadline: self.cell_timeout,
            telemetry,
            throttle,
            progress: self.progress,
        };
        let started = Instant::now();
        let mut failures: Vec<MixCellFailure> = Vec::new();
        let mut checkpoint_hits = 0;

        // Every unique solo run the grid needs, in first-need order.
        let mut solo_keys: Vec<String> = Vec::new();
        let mut solo_specs: Vec<(MixAssignment, usize, Pressure)> = Vec::new();
        for cell in cells {
            for slot in 0..cell.cores {
                let a = cell.mix.assignment(slot);
                let key = mix_solo_key(scale, slot, &a, &cell.pressure, telemetry, throttle);
                if !solo_keys.contains(&key) {
                    solo_keys.push(key);
                    solo_specs.push((a, slot, cell.pressure));
                }
            }
        }

        // Resolve solos: cache, then checkpoint, then simulation.
        let todo: Vec<usize> = (0..solo_keys.len())
            .filter(|&i| {
                let key = &solo_keys[i];
                if self.mix_solos.contains_key(key) {
                    return false;
                }
                if let Some(cp) = &self.checkpoint {
                    if let Some(result) = cp.get(key) {
                        self.mix_solos.insert(key.clone(), result);
                        checkpoint_hits += 1;
                        return false;
                    }
                }
                true
            })
            .collect();
        let outcomes = parallel_map(self.jobs, todo.len(), |j| {
            let (a, slot, pressure) = solo_specs[todo[j]];
            timed_mix_solo_cell(a, slot, &pressure, settings)
        });
        for (&i, outcome) in todo.iter().zip(outcomes) {
            let key = &solo_keys[i];
            match outcome {
                CellOutcome::Ok(result) => {
                    self.record_mix_checkpoint(key, &result);
                    self.mix_solos.insert(key.clone(), *result);
                }
                failed => {
                    let (a, slot, pressure) = &solo_specs[i];
                    failures.push(MixCellFailure {
                        mix_name: String::new(),
                        cores: 1,
                        pressure: pressure.name,
                        solo: Some(a.slot_spec(*slot)),
                        reason: failure_reason(&failed),
                    });
                }
            }
        }

        // Export every resolved solo (checkpoint replays included, so the
        // export is always the complete grid; the export dedups keys).
        if self.stats.is_some() {
            for key in &solo_keys {
                if let Some(result) = self.mix_solos.get(key) {
                    self.record_mix_stats(key, result);
                }
            }
        }

        // Run the mix cells whose solos all resolved.
        let mut resolved: Vec<Option<CellOutcome>> = cells
            .iter()
            .map(|cell| {
                let missing_solo = (0..cell.cores).find(|&slot| {
                    let a = cell.mix.assignment(slot);
                    let key = mix_solo_key(scale, slot, &a, &cell.pressure, telemetry, throttle);
                    !self.mix_solos.contains_key(&key)
                });
                if let Some(slot) = missing_solo {
                    return Some(CellOutcome::Panicked {
                        message: format!("not run: the solo run of core slot {slot} failed"),
                    });
                }
                if let Some(cp) = &self.checkpoint {
                    let key = mix_cell_key(
                        scale,
                        &cell.mix,
                        cell.cores,
                        &cell.pressure,
                        telemetry,
                        throttle,
                    );
                    if let Some(result) = cp.get(&key) {
                        checkpoint_hits += 1;
                        return Some(CellOutcome::Ok(Box::new(result)));
                    }
                }
                None
            })
            .collect();
        let todo: Vec<usize> = (0..cells.len())
            .filter(|&i| resolved[i].is_none())
            .collect();
        let outcomes = parallel_map(self.jobs, todo.len(), |j| {
            let cell = &cells[todo[j]];
            timed_mix_cell(&cell.mix, cell.cores, &cell.pressure, settings)
        });
        for (&i, outcome) in todo.iter().zip(outcomes) {
            if let CellOutcome::Ok(result) = &outcome {
                let cell = &cells[i];
                let key = mix_cell_key(
                    scale,
                    &cell.mix,
                    cell.cores,
                    &cell.pressure,
                    telemetry,
                    throttle,
                );
                self.record_mix_checkpoint(&key, result);
            }
            resolved[i] = Some(outcome);
        }
        if settings.progress && cells.len() > 1 {
            eprintln!(
                "[mix-grid] {} cells in {:.1}s on {} worker(s)",
                cells.len(),
                started.elapsed().as_secs_f64(),
                self.jobs.min(cells.len()),
            );
        }

        // Derive fairness and assemble the report.
        let evaluations: Vec<Option<MixEvaluation>> = cells
            .iter()
            .zip(resolved)
            .map(|(cell, outcome)| {
                let outcome = outcome.expect("every mix cell was resolved or run");
                match outcome {
                    CellOutcome::Ok(result) => {
                        let key = mix_cell_key(
                            scale,
                            &cell.mix,
                            cell.cores,
                            &cell.pressure,
                            telemetry,
                            throttle,
                        );
                        self.record_mix_stats(&key, &result);
                        let solos: Vec<SimResult> = (0..cell.cores)
                            .map(|slot| {
                                let a = cell.mix.assignment(slot);
                                let key = mix_solo_key(
                                    scale,
                                    slot,
                                    &a,
                                    &cell.pressure,
                                    telemetry,
                                    throttle,
                                );
                                self.mix_solos[&key].clone()
                            })
                            .collect();
                        let fairness = FairnessReport::compute(&result, &solos);
                        Some(MixEvaluation {
                            mix_name: cell.mix.name.clone(),
                            cores: cell.cores,
                            pressure: cell.pressure,
                            fairness,
                            result: *result,
                        })
                    }
                    failed => {
                        failures.push(MixCellFailure {
                            mix_name: cell.mix.name.clone(),
                            cores: cell.cores,
                            pressure: cell.pressure.name,
                            solo: None,
                            reason: failure_reason(&failed),
                        });
                        None
                    }
                }
            })
            .collect();
        MixGridReport {
            evaluations,
            failures,
            checkpoint_hits,
        }
    }

    /// Panicking convenience over
    /// [`ParallelHarness::try_evaluate_mix_grid`], mirroring
    /// [`ParallelHarness::evaluate_grid`].
    pub fn evaluate_mix_grid(&mut self, cells: &[MixCell]) -> Vec<MixEvaluation> {
        self.try_evaluate_mix_grid(cells).into_complete()
    }

    /// Appends a mix-namespaced result to the checkpoint, if one is
    /// attached. Write errors degrade the checkpoint, never the sweep.
    fn record_mix_checkpoint(&self, key: &str, result: &SimResult) {
        if let Some(cp) = &self.checkpoint {
            if let Err(e) = cp.record(key, result) {
                eprintln!("[checkpoint] write for {key} failed: {e}");
            }
        }
    }

    /// Appends a mix-namespaced result to the stats export, if one is
    /// attached. Write errors degrade the export, never the sweep.
    fn record_mix_stats(&self, key: &str, result: &SimResult) {
        if let Some(stats) = &self.stats {
            if let Err(e) = stats.record(key, result) {
                eprintln!("[stats] write for {key} failed: {e}");
            }
        }
    }
}

/// The human-readable reason of a failed [`CellOutcome`].
fn failure_reason(outcome: &CellOutcome) -> String {
    match outcome {
        CellOutcome::Ok(_) => unreachable!("successful cells are not failures"),
        CellOutcome::Panicked { message } => format!("panicked: {message}"),
        CellOutcome::TimedOut { limit } => {
            format!("timed out after {:.3}s", limit.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every constructible kind, one representative per variant.
    fn all_kinds() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::None,
            PrefetcherKind::Bop,
            PrefetcherKind::BopAggressive,
            PrefetcherKind::Spp,
            PrefetcherKind::SppAggressive,
            PrefetcherKind::Vldp,
            PrefetcherKind::VldpAggressive,
            PrefetcherKind::Ampm,
            PrefetcherKind::Sms,
            PrefetcherKind::Bingo,
            PrefetcherKind::BingoEntries(4096),
            PrefetcherKind::BingoVote(0.5),
            PrefetcherKind::SingleEvent(EventKind::Offset),
            PrefetcherKind::MultiEvent(3),
            PrefetcherKind::Stride,
            PrefetcherKind::NextLine(2),
            PrefetcherKind::BingoFaulty {
                fault_seed: 9,
                rate: 0.05,
            },
            PrefetcherKind::Faulty { panic_after: 1000 },
        ]
    }

    #[test]
    fn kinds_build_and_have_names() {
        for k in all_kinds() {
            let p = k.build();
            assert!(!p.name().is_empty());
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn storage_from_config_matches_built_prefetcher() {
        for k in all_kinds() {
            assert_eq!(
                k.storage_bits(),
                k.build().storage_bits(),
                "config-level storage of {} disagrees with the built table",
                k.name()
            );
        }
    }

    #[test]
    fn bingo_has_the_largest_headline_storage() {
        let bingo_kb = PrefetcherKind::Bingo.storage_kb();
        for k in [
            PrefetcherKind::Bop,
            PrefetcherKind::Spp,
            PrefetcherKind::Vldp,
        ] {
            assert!(
                k.storage_kb() < bingo_kb,
                "{} should be smaller than Bingo",
                k.name()
            );
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quick_scale_is_smaller() {
        assert!(RunScale::quick().instructions_per_core < RunScale::full().instructions_per_core);
    }

    #[test]
    fn from_parts_reads_quick_flag_exactly() {
        let none = |_: &str| None;
        let quick = RunScale::from_parts(vec!["--quick".to_string()], none);
        assert_eq!(quick, RunScale::quick());
        let full = RunScale::from_parts(Vec::new(), none);
        assert_eq!(full, RunScale::full());
        // Near-misses must not enable quick mode.
        let near = RunScale::from_parts(
            vec![
                "--quickly".to_string(),
                "quick".to_string(),
                "--QUICK".to_string(),
            ],
            none,
        );
        assert_eq!(near, RunScale::full());
    }

    #[test]
    fn from_parts_applies_env_overrides() {
        let env = |name: &str| match name {
            "BINGO_WARMUP" => Some("1234".to_string()),
            "BINGO_INSTR" => Some("5678".to_string()),
            _ => None,
        };
        let scale = RunScale::from_parts(vec!["--quick".to_string()], env);
        assert_eq!(scale.warmup_per_core, 1234);
        assert_eq!(scale.instructions_per_core, 5678);
        assert_eq!(scale.seed, RunScale::quick().seed);
    }

    #[test]
    #[should_panic(expected = "BINGO_WARMUP must be an unsigned integer")]
    fn from_parts_rejects_garbage_warmup() {
        let env = |name: &str| (name == "BINGO_WARMUP").then(|| "1e6".to_string());
        let _ = RunScale::from_parts(Vec::new(), env);
    }

    #[test]
    #[should_panic(expected = "BINGO_INSTR must be an unsigned integer")]
    fn from_parts_rejects_garbage_instr() {
        let env = |name: &str| (name == "BINGO_INSTR").then(|| "100k".to_string());
        let _ = RunScale::from_parts(Vec::new(), env);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(8, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate worker counts.
        assert_eq!(parallel_map(1, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(parallel_map(64, 1, |i| i), vec![0]);
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
    }

    /// The acceptance test of the parallel harness: identical
    /// [`SimResult`]s (speedups, coverage, miss counts) to the serial
    /// [`Harness`] on a 3 × 3 grid, independent of scheduling.
    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let scale = RunScale {
            instructions_per_core: 20_000,
            warmup_per_core: 10_000,
            seed: 7,
        };
        let workloads = [Workload::Em3d, Workload::Streaming, Workload::Mix1];
        let kinds = [
            PrefetcherKind::Bingo,
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
        ];
        let cells: Vec<(Workload, PrefetcherKind)> = workloads
            .iter()
            .flat_map(|&w| kinds.iter().map(move |&k| (w, k)))
            .collect();
        let mut parallel = ParallelHarness::with_jobs(scale, 4).quiet();
        let par = parallel.evaluate_grid(&cells);
        let mut serial = Harness::new(scale);
        for (&(w, k), pe) in cells.iter().zip(&par) {
            let se = serial.evaluate(w, k);
            assert_eq!(pe.workload, w);
            assert_eq!(pe.kind, k);
            assert_eq!(se.result, pe.result, "{w} / {}: result differs", k.name());
            assert_eq!(
                se.baseline,
                pe.baseline,
                "{w} / {}: baseline differs",
                k.name()
            );
            assert_eq!(
                se.speedup.to_bits(),
                pe.speedup.to_bits(),
                "{w} / {}: speedup differs ({} vs {})",
                k.name(),
                se.speedup,
                pe.speedup
            );
            assert_eq!(
                se.coverage,
                pe.coverage,
                "{w} / {}: coverage report differs",
                k.name()
            );
        }
    }

    fn tiny_scale(seed: u64) -> RunScale {
        RunScale {
            instructions_per_core: 15_000,
            warmup_per_core: 5_000,
            seed,
        }
    }

    /// The tentpole acceptance test: a sweep containing a deliberately
    /// panicking cell completes every other cell and lists the failed
    /// cell with its panic message.
    #[test]
    fn panicking_cell_does_not_abort_the_sweep() {
        let faulty = PrefetcherKind::Faulty { panic_after: 100 };
        let cells = [
            (Workload::Em3d, PrefetcherKind::NextLine(1)),
            (Workload::Em3d, faulty),
            (Workload::Streaming, PrefetcherKind::Stride),
        ];
        let mut h = ParallelHarness::with_jobs(tiny_scale(11), 2).quiet();
        let report = h.try_evaluate_grid(&cells);
        assert!(!report.is_clean());
        assert_eq!(report.evaluations.len(), 3);
        assert!(report.evaluations[0].is_some(), "healthy cell 0 completed");
        assert!(report.evaluations[1].is_none(), "faulty cell has no result");
        assert!(report.evaluations[2].is_some(), "healthy cell 2 completed");
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.workload, Workload::Em3d);
        assert_eq!(failure.kind, faulty);
        assert!(
            failure
                .reason
                .contains("FaultyPrefetcher panicked deliberately"),
            "panic message must be preserved, got: {}",
            failure.reason
        );
        let text = report.failure_report();
        assert!(text.contains("Faulty@100"), "report names the cell: {text}");
        assert!(
            text.contains("FaultyPrefetcher panicked deliberately"),
            "report carries the message: {text}"
        );
    }

    /// The nonzero-exit path: unwrapping a dirty report panics (after the
    /// sweep completed), so `cargo run` sweeps exit nonzero on failures.
    #[test]
    #[should_panic(expected = "sweep cell(s) failed")]
    fn into_complete_panics_on_failed_cells() {
        let cells = [
            (Workload::Streaming, PrefetcherKind::NextLine(1)),
            (
                Workload::Streaming,
                PrefetcherKind::Faulty { panic_after: 0 },
            ),
        ];
        let mut h = ParallelHarness::with_jobs(tiny_scale(12), 2).quiet();
        let _ = h.evaluate_grid(&cells);
    }

    /// A zero deadline times out every cell — including the baseline —
    /// and the sweep still completes with the failures as data.
    #[test]
    fn zero_cell_timeout_times_out_instead_of_hanging() {
        let mut h = ParallelHarness::with_jobs(tiny_scale(13), 2)
            .quiet()
            .with_cell_timeout(Duration::ZERO);
        let report = h.try_evaluate_grid(&[(Workload::Em3d, PrefetcherKind::NextLine(1))]);
        assert!(report.evaluations.iter().all(Option::is_none));
        let baseline_failure = report
            .failures
            .iter()
            .find(|f| f.kind == PrefetcherKind::None)
            .expect("the no-prefetcher baseline timed out");
        assert!(
            baseline_failure.reason.contains("timed out"),
            "got: {}",
            baseline_failure.reason
        );
        // The dependent cell is reported as not-run, tied to its baseline.
        let cell_failure = report
            .failures
            .iter()
            .find(|f| f.kind == PrefetcherKind::NextLine(1))
            .expect("the dependent cell is reported too");
        assert!(
            cell_failure.reason.contains("baseline failed"),
            "got: {}",
            cell_failure.reason
        );
    }

    /// A generous deadline changes nothing: same bits as no deadline.
    #[test]
    fn generous_cell_timeout_is_bit_for_bit_invisible() {
        let scale = tiny_scale(14);
        let cells = [(Workload::Streaming, PrefetcherKind::Stride)];
        let plain = ParallelHarness::with_jobs(scale, 1)
            .quiet()
            .try_evaluate_grid(&cells)
            .into_complete();
        let timed = ParallelHarness::with_jobs(scale, 1)
            .quiet()
            .with_cell_timeout(Duration::from_secs(3600))
            .try_evaluate_grid(&cells)
            .into_complete();
        assert_eq!(plain[0].result, timed[0].result);
        assert_eq!(plain[0].speedup.to_bits(), timed[0].speedup.to_bits());
    }

    #[test]
    fn run_cell_reports_panics_as_outcomes() {
        let outcome = run_cell(
            Workload::Streaming,
            PrefetcherKind::Faulty { panic_after: 0 },
            tiny_scale(15),
            None,
        );
        match outcome {
            CellOutcome::Panicked { message } => {
                assert!(message.contains("FaultyPrefetcher panicked deliberately"));
            }
            other => panic!("expected a panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn cell_keys_separate_every_dimension() {
        let base = cell_key(tiny_scale(1), Workload::Em3d, PrefetcherKind::Bingo);
        for other in [
            cell_key(tiny_scale(2), Workload::Em3d, PrefetcherKind::Bingo),
            cell_key(tiny_scale(1), Workload::Streaming, PrefetcherKind::Bingo),
            cell_key(tiny_scale(1), Workload::Em3d, PrefetcherKind::Bop),
            cell_key(
                RunScale {
                    instructions_per_core: 1,
                    ..tiny_scale(1)
                },
                Workload::Em3d,
                PrefetcherKind::Bingo,
            ),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn trace_cell_keys_namespace_every_dimension() {
        let scale = tiny_scale(1);
        let base = trace_cell_key(
            scale,
            "/tmp/t/streaming",
            PrefetcherKind::Bingo,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        );
        assert!(
            base.starts_with("trace:"),
            "trace cells live in their own checkpoint namespace: {base}"
        );
        // The seed is deliberately absent: a replayed stream is fully
        // determined by the recorded bytes.
        let reseeded = trace_cell_key(
            tiny_scale(2),
            "/tmp/t/streaming",
            PrefetcherKind::Bingo,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        );
        assert_eq!(base, reseeded, "seed must not split trace checkpoints");
        for other in [
            trace_cell_key(
                scale,
                "/tmp/t/em3d",
                PrefetcherKind::Bingo,
                TelemetryLevel::Off,
                ThrottleMode::Off,
            ),
            trace_cell_key(
                scale,
                "/tmp/t/streaming?policy=lenient",
                PrefetcherKind::Bingo,
                TelemetryLevel::Off,
                ThrottleMode::Off,
            ),
            trace_cell_key(
                scale,
                "/tmp/t/streaming",
                PrefetcherKind::Bop,
                TelemetryLevel::Off,
                ThrottleMode::Off,
            ),
            trace_cell_key(
                RunScale {
                    instructions_per_core: 1,
                    ..scale
                },
                "/tmp/t/streaming",
                PrefetcherKind::Bingo,
                TelemetryLevel::Off,
                ThrottleMode::Off,
            ),
            trace_cell_key(
                scale,
                "/tmp/t/streaming",
                PrefetcherKind::Bingo,
                TelemetryLevel::Counts,
                ThrottleMode::Off,
            ),
            trace_cell_key(
                scale,
                "/tmp/t/streaming",
                PrefetcherKind::Bingo,
                TelemetryLevel::Off,
                ThrottleMode::Feedback,
            ),
        ] {
            assert_ne!(base, other);
        }
    }

    /// The replay acceptance test: a captured trace swept through the
    /// parallel harness reproduces the live generator sweep bit-for-bit
    /// (modulo the attached ingest report, which only replay carries).
    #[test]
    fn trace_grid_matches_live_generators_bit_for_bit() {
        let scale = tiny_scale(21);
        let workload = Workload::Streaming;
        let dir = std::env::temp_dir()
            .join("bingo-bench-trace-grid")
            .join(format!("{}-{}", workload.slug(), std::process::id()));
        let cores = SystemConfig::paper().cores;
        // Slack past warmup + instructions: cores fetch slightly ahead of
        // retirement, so the capture must outrun the replay's appetite.
        let records = scale.warmup_per_core + scale.instructions_per_core + 256;
        bingo_workloads::capture_workload(workload, cores, scale.seed, records, 1024, &dir)
            .expect("capture");
        let trace = TraceWorkload::open(&dir).expect("open capture");

        let kinds = [PrefetcherKind::None, PrefetcherKind::NextLine(1)];
        let mut h = ParallelHarness::with_jobs(scale, 2).quiet();
        let report = h.try_evaluate_trace_grid(std::slice::from_ref(&trace), &kinds);
        assert!(report.is_clean(), "{}", report.failure_report());
        assert_eq!(report.completed(), 2);
        let evals = report.into_complete();

        for (e, &kind) in evals.iter().zip(&kinds) {
            assert_eq!(e.trace, trace.name());
            let live = run_one(workload, kind, scale);
            let mut replayed = e.result.clone();
            let ingest = replayed.ingest.take().expect("replay attaches a report");
            assert!(ingest.is_clean(), "pristine capture quarantined: {ingest}");
            // The sim stops pulling once every core retires its budget, so
            // it consumes at most the capture (never wrapping to a second
            // pass) and at least the simulated instruction count.
            assert!(
                ingest.delivered_records <= records * cores as u64
                    && ingest.delivered_records
                        >= (scale.warmup_per_core + scale.instructions_per_core) * cores as u64,
                "replay consumed {} of {} captured records",
                ingest.delivered_records,
                records * cores as u64
            );
            assert_eq!(
                live,
                replayed,
                "{} replay diverged from the live generators",
                kind.name()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A corrupt strict trace fails its cell with the typed decode error
    /// (byte offset included) while the rest of the sweep completes; the
    /// same bytes under the lenient policy complete with the damage
    /// quarantined and reported.
    #[test]
    fn corrupt_trace_cell_fails_typed_while_lenient_completes() {
        let scale = RunScale {
            instructions_per_core: 4_000,
            warmup_per_core: 1_000,
            seed: 22,
        };
        let workload = Workload::Em3d;
        let dir = std::env::temp_dir()
            .join("bingo-bench-trace-corrupt")
            .join(format!("{}", std::process::id()));
        let cores = SystemConfig::paper().cores;
        let records = scale.warmup_per_core + scale.instructions_per_core + 256;
        bingo_workloads::capture_workload(workload, cores, scale.seed, records, 512, &dir)
            .expect("capture");
        // Stomp a payload byte mid-file in core 0's stream.
        let path = dir.join("core0.btrc");
        let mut bytes = std::fs::read(&path).expect("read capture");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite capture");

        let strict = TraceWorkload::open(&dir).expect("open capture");
        let lenient = TraceWorkload::with_policy(&dir, bingo_trace::Policy::Lenient)
            .expect("open capture leniently");
        let mut h = ParallelHarness::with_jobs(scale, 2).quiet();
        let report = h.try_evaluate_trace_grid(&[strict, lenient], &[PrefetcherKind::NextLine(1)]);

        // Strict: baseline and cell fail, reason carries a byte offset.
        assert_eq!(report.failures.len(), 2, "{}", report.failure_report());
        let baseline_failure = report
            .failures
            .iter()
            .find(|f| f.kind == PrefetcherKind::None)
            .expect("strict baseline fails");
        assert!(
            baseline_failure.reason.contains("byte"),
            "typed error with offset expected, got: {}",
            baseline_failure.reason
        );
        assert!(report.evaluations[0].is_none(), "strict cell has no result");

        // Lenient: completes, and the quarantine is visible in the result.
        let lenient_eval = report.evaluations[1]
            .as_ref()
            .expect("lenient replay completes");
        let ingest = lenient_eval
            .result
            .ingest
            .as_ref()
            .expect("lenient replay attaches a report");
        assert!(
            ingest.quarantined_records > 0,
            "the stomped chunk must be quarantined: {ingest}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_cell_timeout_accepts_seconds() {
        assert_eq!(parse_cell_timeout("2"), Duration::from_secs(2));
        assert_eq!(parse_cell_timeout(" 0.25 "), Duration::from_millis(250));
        assert_eq!(parse_cell_timeout("0"), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "BINGO_CELL_TIMEOUT must be a number of seconds")]
    fn parse_cell_timeout_rejects_garbage() {
        let _ = parse_cell_timeout("fast");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn parse_cell_timeout_rejects_negative() {
        let _ = parse_cell_timeout("-1");
    }

    /// Workload-scale determinism lock for the telemetry layer: a
    /// telemetry-on sweep produces bit-for-bit the machine results of a
    /// telemetry-off sweep — same IPC, same miss counts, same speedup —
    /// plus an attached report whose counters agree with the LLC's own.
    #[test]
    fn telemetry_is_invisible_at_workload_scale() {
        let scale = RunScale {
            instructions_per_core: 60_000,
            warmup_per_core: 20_000,
            seed: 16,
        };
        let cells = [(Workload::Streaming, PrefetcherKind::Bingo)];
        let off = ParallelHarness::with_jobs(scale, 1)
            .quiet()
            .evaluate_grid(&cells);
        let on = ParallelHarness::with_jobs(scale, 1)
            .quiet()
            .with_telemetry(TelemetryLevel::Counts)
            .evaluate_grid(&cells);
        assert!(off[0].result.telemetry.is_none());
        let mut on_result = on[0].result.clone();
        let t = on_result.telemetry.take().expect("report attached");
        assert_eq!(off[0].result, on_result, "telemetry changed the machine");
        let mut on_baseline = on[0].baseline.clone();
        on_baseline.telemetry = None;
        assert_eq!(off[0].baseline, on_baseline);
        assert_eq!(off[0].speedup.to_bits(), on[0].speedup.to_bits());
        // The ledger agrees with the cache's own lifecycle counters —
        // including every per-reason drop class, so a prefetch that never
        // issued is still accounted for exactly once.
        let llc = &on[0].result.llc;
        assert_eq!(t.issued, llc.pf_issued);
        assert_eq!(t.timely, llc.pf_useful);
        assert_eq!(t.late, llc.pf_late);
        assert_eq!(t.unused, llc.pf_useless);
        assert_eq!(t.dropped_duplicate, llc.pf_dropped_duplicate);
        assert_eq!(t.dropped_mshr, llc.pf_dropped_mshr);
        assert_eq!(t.dropped_queue, llc.pf_dropped_queue);
        assert_eq!(t.orphans, 0);
        // Requested = issued + every drop class: nothing leaks between
        // the request and the issue decision.
        assert_eq!(
            llc.pf_requested,
            llc.pf_issued + llc.pf_dropped_duplicate + llc.pf_dropped_mshr + llc.pf_dropped_queue
        );
        // Bingo attributes its bursts to event kinds.
        let attributed: u64 = ["long", "short"]
            .iter()
            .filter_map(|l| t.source(l))
            .map(|c| c.issued)
            .sum();
        assert!(t.issued > 0, "Bingo must prefetch on em3d");
        assert_eq!(attributed, t.issued, "every Bingo burst is attributed");
    }

    /// A fault-injected Bingo cell with telemetry enabled completes
    /// without panicking and keeps the ledger consistent with the cache —
    /// corrupted metadata must not desynchronize the observability layer.
    #[test]
    fn faulty_bingo_with_telemetry_stays_consistent() {
        let kind = PrefetcherKind::BingoFaulty {
            fault_seed: 5,
            rate: 0.05,
        };
        let mut h = ParallelHarness::with_jobs(tiny_scale(17), 2)
            .quiet()
            .with_telemetry(TelemetryLevel::Counts);
        let report = h.try_evaluate_grid(&[(Workload::Em3d, kind)]);
        assert!(report.is_clean(), "{}", report.failure_report());
        let evals = report.into_complete();
        let t = evals[0].result.telemetry.as_ref().expect("report attached");
        let llc = &evals[0].result.llc;
        assert_eq!(t.issued, llc.pf_issued);
        assert_eq!(t.timely, llc.pf_useful);
        assert_eq!(t.late, llc.pf_late);
        assert_eq!(t.unused, llc.pf_useless);
        assert_eq!(t.dropped_duplicate, llc.pf_dropped_duplicate);
        assert_eq!(t.dropped_mshr, llc.pf_dropped_mshr);
        assert_eq!(t.dropped_queue, llc.pf_dropped_queue);
        assert_eq!(t.orphans, 0, "fault injection must not orphan records");
    }

    #[test]
    fn telemetry_cell_keys_extend_but_preserve_off_keys() {
        let scale = tiny_scale(1);
        let (w, k) = (Workload::Em3d, PrefetcherKind::Bingo);
        assert_eq!(
            cell_key_with_telemetry(scale, w, k, TelemetryLevel::Off),
            cell_key(scale, w, k),
            "off keys must match pre-telemetry checkpoints"
        );
        let counts = cell_key_with_telemetry(scale, w, k, TelemetryLevel::Counts);
        let trace = cell_key_with_telemetry(scale, w, k, TelemetryLevel::Trace);
        assert!(counts.ends_with("/telemetry=counts"));
        assert_ne!(counts, trace);
        assert_ne!(counts, cell_key(scale, w, k));
    }

    #[test]
    fn throttle_cell_keys_extend_but_preserve_off_keys() {
        let scale = tiny_scale(1);
        let (w, k) = (Workload::Em3d, PrefetcherKind::Bingo);
        for telemetry in [TelemetryLevel::Off, TelemetryLevel::Counts] {
            assert_eq!(
                cell_key_with_options(scale, w, k, telemetry, ThrottleMode::Off),
                cell_key_with_telemetry(scale, w, k, telemetry),
                "throttle-off keys must match pre-throttle checkpoints"
            );
        }
        let fb = cell_key_with_options(scale, w, k, TelemetryLevel::Off, ThrottleMode::Feedback);
        let st = cell_key_with_options(scale, w, k, TelemetryLevel::Off, ThrottleMode::Static);
        assert!(fb.ends_with("/throttle=feedback"));
        assert!(st.ends_with("/throttle=static"));
        assert_ne!(fb, st);
        // Both dimensions compose in a fixed order.
        let both =
            cell_key_with_options(scale, w, k, TelemetryLevel::Counts, ThrottleMode::Feedback);
        assert!(both.ends_with("/telemetry=counts/throttle=feedback"));
    }

    /// The harness-level throttle contract: a feedback-throttled sweep
    /// completes, and because throttling is strictly subtractive, the
    /// throttled Bingo never issues more prefetches than the unthrottled
    /// run of the same cell. The baseline (no prefetcher) is bit-for-bit
    /// unaffected, so speedups stay comparable across modes.
    #[test]
    fn throttled_sweeps_only_subtract_prefetches() {
        let scale = tiny_scale(22);
        let cells = [(Workload::Em3d, PrefetcherKind::Bingo)];
        let plain = ParallelHarness::with_jobs(scale, 1)
            .quiet()
            .evaluate_grid(&cells);
        let throttled = ParallelHarness::with_jobs(scale, 1)
            .quiet()
            .with_throttle(ThrottleMode::Static)
            .evaluate_grid(&cells);
        assert_eq!(
            plain[0].baseline, throttled[0].baseline,
            "throttling must not touch the no-prefetcher baseline"
        );
        assert!(
            throttled[0].result.llc.pf_issued <= plain[0].result.llc.pf_issued,
            "static throttle issued more prefetches ({}) than unthrottled ({})",
            throttled[0].result.llc.pf_issued,
            plain[0].result.llc.pf_issued
        );
    }

    /// A telemetry-on sweep resumed from its checkpoint replays the full
    /// result — report included — instead of re-simulating.
    #[test]
    fn checkpoint_replays_telemetry_reports() {
        let dir = std::env::temp_dir().join("bingo-runner-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("telemetry-replay-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let scale = tiny_scale(19);
        let cells = [(Workload::Streaming, PrefetcherKind::NextLine(1))];
        let run = |path: &std::path::Path| {
            let mut h = ParallelHarness::with_jobs(scale, 1)
                .quiet()
                .with_telemetry(TelemetryLevel::Counts)
                .with_checkpoint(Checkpoint::open(path).expect("open checkpoint"));
            h.try_evaluate_grid(&cells)
        };
        let fresh = run(&path);
        assert_eq!(fresh.checkpoint_hits, 0);
        let resumed = run(&path);
        assert!(
            resumed.checkpoint_hits >= 2,
            "baseline and cell replay from the checkpoint"
        );
        let a = fresh.into_complete();
        let b = resumed.into_complete();
        assert_eq!(a[0].result, b[0].result);
        assert!(b[0].result.telemetry.is_some(), "report survives the file");
        assert_eq!(a[0].result.telemetry, b[0].result.telemetry);
        let _ = std::fs::remove_file(&path);
    }

    /// The metric_sum satellite: a figure requiring a metric no
    /// prefetcher reports gets a named failure instead of a silent zero.
    #[test]
    fn require_metrics_reports_unknown_names() {
        let mut h = ParallelHarness::with_jobs(tiny_scale(18), 2).quiet();
        let mut report =
            h.try_evaluate_grid(&[(Workload::Streaming, PrefetcherKind::MultiEvent(2))]);
        report.require_metrics(&["lookups"]);
        assert!(report.is_clean(), "known metrics pass");
        report.require_metrics(&["no_such_metric"]);
        assert!(!report.is_clean());
        let text = report.failure_report();
        assert!(
            text.contains("\"no_such_metric\""),
            "failure report names the missing metric: {text}"
        );
    }

    /// The stats export captures every completed cell plus each unique
    /// baseline, one JSON line per cell.
    #[test]
    fn stats_export_writes_grid_and_baselines() {
        let dir = std::env::temp_dir().join("bingo-runner-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("stats-export-{}.json", std::process::id()));
        let scale = tiny_scale(20);
        let export = StatsExport::create(&path).expect("create export");
        let mut h = ParallelHarness::with_jobs(scale, 2)
            .quiet()
            .with_telemetry(TelemetryLevel::Counts)
            .with_stats_export(export);
        let _ = h.evaluate_all(
            &[Workload::Streaming],
            &[PrefetcherKind::NextLine(1), PrefetcherKind::Stride],
        );
        let text = std::fs::read_to_string(&path).expect("read export");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one baseline + two cells");
        assert!(
            lines[0].contains("/None/telemetry=counts\""),
            "{}",
            lines[0]
        );
        assert!(lines.iter().all(|l| l.contains("\"telemetry\":")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_baseline_is_computed_once_and_shared() {
        let scale = RunScale {
            instructions_per_core: 10_000,
            warmup_per_core: 5_000,
            seed: 3,
        };
        let mut h = ParallelHarness::with_jobs(scale, 2).quiet();
        // Many cells over one workload: one baseline, shared by all.
        let evals = h.evaluate_all(
            &[Workload::Streaming],
            &[PrefetcherKind::NextLine(1), PrefetcherKind::Stride],
        );
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0].baseline, evals[1].baseline);
        assert_eq!(h.baseline(Workload::Streaming), &evals[0].baseline);
    }

    /// A tiny committed-style mix used by the mix-grid unit tests.
    fn tiny_mix() -> MixConfig {
        MixConfig::parse_str(
            "mix tiny\n\
             core 0 workload=streaming prefetcher=stride\n\
             core 1 workload=stress-storm prefetcher=none scale=50%\n\
             end\n",
        )
        .unwrap()
        .remove(0)
    }

    #[test]
    fn mix_keys_are_namespaced_and_stable_in_default_modes() {
        let scale = tiny_scale(7);
        let mix = tiny_mix();
        let key = mix_cell_key(
            scale,
            &mix,
            2,
            &Pressure::NONE,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        );
        assert_eq!(
            key,
            "mix:7/15000/5000/tiny@2/c0=streaming+Stride,c1=stress-storm+None*50%"
        );
        let pressured = mix_cell_key(
            scale,
            &mix,
            2,
            &Pressure::SCARCE,
            TelemetryLevel::Counts,
            ThrottleMode::Feedback,
        );
        assert!(
            pressured.ends_with("/pressure=scarce/telemetry=counts/throttle=feedback"),
            "{pressured}"
        );
        let solo = mix_solo_key(
            scale,
            1,
            &mix.cores[1],
            &Pressure::NONE,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        );
        assert_eq!(solo, "mix-solo:7/15000/5000/c1=stress-storm+None*50%");
    }

    #[test]
    fn mix_grid_runs_solos_and_reports_fairness() {
        let mix = tiny_mix();
        let cells = [MixCell {
            mix: mix.clone(),
            cores: 2,
            pressure: Pressure::NONE,
        }];
        let mut h = ParallelHarness::with_jobs(tiny_scale(7), 2).quiet();
        let report = h.try_evaluate_mix_grid(&cells);
        assert!(report.is_clean(), "{}", report.failure_report());
        let evals = report.into_complete();
        assert_eq!(evals.len(), 1);
        let e = &evals[0];
        assert_eq!(e.mix_name, "tiny");
        assert_eq!(e.cores, 2);
        assert_eq!(e.fairness.core_ipcs.len(), 2);
        assert_eq!(e.fairness.slowdowns.len(), 2);
        // The scaled slot committed half the budget.
        assert_eq!(e.result.cores[0].instructions, 15_000);
        assert_eq!(e.result.cores[1].instructions, 7_500);
        // Fairness metrics recompute from the per-core stats.
        let ipcs = e.result.core_ipcs();
        assert_eq!(e.fairness.aggregate_ipc, ipcs.iter().sum::<f64>());
        assert!(e.fairness.min_max_ipc_ratio > 0.0 && e.fairness.min_max_ipc_ratio <= 1.0);
        // Contention roughly slows a core down relative to its solo run;
        // sub-percent wins are possible at tiny scale (timing quirks),
        // anything larger would mean the solos are wired to the wrong
        // streams.
        for &s in &e.fairness.slowdowns {
            assert!(s > 0.95, "slowdown {s}: mix run beat the solo run by >5%");
        }
    }

    #[test]
    fn mix_grid_replicates_pattern_cyclically_when_ramped() {
        let mix = tiny_mix();
        let cells = [MixCell {
            mix,
            cores: 4,
            pressure: Pressure::CONSTRAINED,
        }];
        let mut h = ParallelHarness::with_jobs(tiny_scale(9), 2).quiet();
        let evals = h.try_evaluate_mix_grid(&cells).into_complete();
        let e = &evals[0];
        assert_eq!(e.result.cores.len(), 4);
        // Slots 2 and 3 repeat the declared pattern (full budget, half
        // budget) with their own per-core streams.
        assert_eq!(e.result.cores[2].instructions, 15_000);
        assert_eq!(e.result.cores[3].instructions, 7_500);
    }

    #[test]
    fn failed_solo_fails_dependent_mix_cells_only() {
        let broken = MixConfig {
            name: "broken".to_string(),
            cores: vec![MixAssignment {
                workload: Workload::Em3d,
                prefetcher: PrefetcherKind::Faulty { panic_after: 100 },
                scale_percent: 100,
            }],
            ramp: None,
        };
        let healthy = tiny_mix();
        let cells = [
            MixCell {
                mix: broken,
                cores: 1,
                pressure: Pressure::NONE,
            },
            MixCell {
                mix: healthy,
                cores: 2,
                pressure: Pressure::NONE,
            },
        ];
        let mut h = ParallelHarness::with_jobs(tiny_scale(5), 2).quiet();
        let report = h.try_evaluate_mix_grid(&cells);
        assert!(!report.is_clean());
        assert!(report.evaluations[0].is_none(), "broken cell has no result");
        assert!(report.evaluations[1].is_some(), "healthy cell completed");
        // The solo failure and the dependent cell failure are both listed.
        assert!(report.failures.iter().any(|f| f.solo.is_some()));
        assert!(report
            .failures
            .iter()
            .any(|f| f.solo.is_none() && f.mix_name == "broken"));
    }
}
