//! Experiment runner: builds (workload × prefetcher) simulations, caches
//! no-prefetcher baselines, and derives the paper's metrics.

use std::collections::HashMap;

use bingo::{Bingo, BingoConfig, EventKind, MultiEventConfig, MultiEventPrefetcher};
use bingo_baselines::{
    Ampm, AmpmConfig, Bop, BopConfig, Sms, SmsConfig, Spp, SppConfig, StrideConfig,
    StridePrefetcher, Vldp, VldpConfig,
};
use bingo_sim::{
    CoverageReport, NextLinePrefetcher, NoPrefetcher, Prefetcher, SimResult, System, SystemConfig,
};
use bingo_workloads::Workload;

/// Which prefetcher to attach to every core.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum PrefetcherKind {
    /// No prefetcher (baseline).
    None,
    /// Best-Offset prefetcher, paper configuration.
    Bop,
    /// BOP at degree 32 (Fig. 10 "Aggr").
    BopAggressive,
    /// Signature Path prefetcher, paper configuration.
    Spp,
    /// SPP at a 1 % confidence threshold (Fig. 10 "Aggr").
    SppAggressive,
    /// Variable-Length Delta prefetcher, paper configuration.
    Vldp,
    /// VLDP at degree 32 (Fig. 10 "Aggr").
    VldpAggressive,
    /// Access Map Pattern Matching.
    Ampm,
    /// Spatial Memory Streaming.
    Sms,
    /// Bingo, paper configuration (16 K-entry unified table).
    Bingo,
    /// Bingo with a non-default history size (Fig. 6 sweep).
    BingoEntries(usize),
    /// Bingo with a non-default footprint-voting threshold (ablation).
    BingoVote(f64),
    /// Single-event TAGE-like prefetcher (Fig. 2 sweep).
    SingleEvent(EventKind),
    /// Multi-event cascade over the first `n` events (Fig. 3 sweep; also
    /// the Fig. 4 redundancy vehicle at `n = 2`).
    MultiEvent(usize),
    /// Classic PC-stride prefetcher (reference).
    Stride,
    /// Next-line prefetcher with the given degree (reference).
    NextLine(usize),
}

impl PrefetcherKind {
    /// The six prefetchers of the paper's headline comparison, figure
    /// order.
    pub const HEADLINE: [PrefetcherKind; 6] = [
        PrefetcherKind::Bop,
        PrefetcherKind::Spp,
        PrefetcherKind::Vldp,
        PrefetcherKind::Ampm,
        PrefetcherKind::Sms,
        PrefetcherKind::Bingo,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            PrefetcherKind::None => "None".into(),
            PrefetcherKind::Bop => "BOP".into(),
            PrefetcherKind::BopAggressive => "BOP-Aggr".into(),
            PrefetcherKind::Spp => "SPP".into(),
            PrefetcherKind::SppAggressive => "SPP-Aggr".into(),
            PrefetcherKind::Vldp => "VLDP".into(),
            PrefetcherKind::VldpAggressive => "VLDP-Aggr".into(),
            PrefetcherKind::Ampm => "AMPM".into(),
            PrefetcherKind::Sms => "SMS".into(),
            PrefetcherKind::Bingo => "Bingo".into(),
            PrefetcherKind::BingoEntries(n) => format!("Bingo-{}K", n / 1024),
            PrefetcherKind::BingoVote(t) => format!("Bingo-vote{:.0}%", t * 100.0),
            PrefetcherKind::SingleEvent(k) => k.label().into(),
            PrefetcherKind::MultiEvent(n) => format!("{n}-event"),
            PrefetcherKind::Stride => "Stride".into(),
            PrefetcherKind::NextLine(d) => format!("NextLine-{d}"),
        }
    }

    /// Builds one prefetcher instance.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetcher),
            PrefetcherKind::Bop => Box::new(Bop::new(BopConfig::paper())),
            PrefetcherKind::BopAggressive => Box::new(Bop::new(BopConfig::aggressive())),
            PrefetcherKind::Spp => Box::new(Spp::new(SppConfig::paper())),
            PrefetcherKind::SppAggressive => Box::new(Spp::new(SppConfig::aggressive())),
            PrefetcherKind::Vldp => Box::new(Vldp::new(VldpConfig::paper())),
            PrefetcherKind::VldpAggressive => Box::new(Vldp::new(VldpConfig::aggressive())),
            PrefetcherKind::Ampm => Box::new(Ampm::new(AmpmConfig::paper())),
            PrefetcherKind::Sms => Box::new(Sms::new(SmsConfig::paper())),
            PrefetcherKind::Bingo => Box::new(Bingo::new(BingoConfig::paper())),
            PrefetcherKind::BingoEntries(n) => {
                Box::new(Bingo::new(BingoConfig::with_history_entries(n)))
            }
            PrefetcherKind::BingoVote(t) => Box::new(Bingo::new(BingoConfig {
                vote_threshold: t,
                ..BingoConfig::paper()
            })),
            PrefetcherKind::SingleEvent(k) => {
                Box::new(MultiEventPrefetcher::new(MultiEventConfig::single(k)))
            }
            PrefetcherKind::MultiEvent(n) => {
                Box::new(MultiEventPrefetcher::new(MultiEventConfig::first_n(n)))
            }
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(StrideConfig::typical())),
            PrefetcherKind::NextLine(d) => Box::new(NextLinePrefetcher::new(d)),
        }
    }

    /// Per-core metadata storage in KB (for the performance-density model).
    pub fn storage_kb(self) -> f64 {
        self.build().storage_bits() as f64 / 8.0 / 1024.0
    }
}

/// Simulation scale for an experiment run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RunScale {
    /// Instructions retired per core in the measurement window.
    pub instructions_per_core: u64,
    /// Warmup instructions per core (caches and predictor tables live,
    /// statistics discarded) — the SimFlex warmed-checkpoint methodology.
    pub warmup_per_core: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunScale {
    /// The full scale used for the published numbers in EXPERIMENTS.md.
    pub fn full() -> Self {
        RunScale {
            instructions_per_core: 1_000_000,
            warmup_per_core: 1_500_000,
            seed: 42,
        }
    }

    /// A reduced scale for CI and Criterion.
    pub fn quick() -> Self {
        RunScale {
            instructions_per_core: 150_000,
            warmup_per_core: 100_000,
            seed: 42,
        }
    }

    /// Reads `--quick` from the process arguments (any position), then
    /// applies the `BINGO_WARMUP` / `BINGO_INSTR` environment overrides
    /// (development knobs for calibration sweeps).
    pub fn from_args() -> Self {
        let mut scale = if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        };
        if let Some(w) = std::env::var("BINGO_WARMUP").ok().and_then(|v| v.parse().ok()) {
            scale.warmup_per_core = w;
        }
        if let Some(n) = std::env::var("BINGO_INSTR").ok().and_then(|v| v.parse().ok()) {
            scale.instructions_per_core = n;
        }
        scale
    }
}

/// Runs one (workload, prefetcher) simulation on the paper's 4-core system.
pub fn run_one(workload: Workload, kind: PrefetcherKind, scale: RunScale) -> SimResult {
    let cfg = SystemConfig::paper();
    let sources = workload.sources(cfg.cores, scale.seed);
    let system =
        System::with_prefetchers(cfg, sources, |_| kind.build(), scale.instructions_per_core)
            .with_warmup(scale.warmup_per_core);
    system.run()
}

/// Runner with per-workload baseline caching.
#[derive(Debug, Default)]
pub struct Harness {
    scale: RunScale,
    baselines: HashMap<Workload, SimResult>,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale::full()
    }
}

impl Harness {
    /// Creates a harness at the given scale.
    pub fn new(scale: RunScale) -> Self {
        Harness {
            scale,
            baselines: HashMap::new(),
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// The cached no-prefetcher baseline for a workload.
    pub fn baseline(&mut self, workload: Workload) -> &SimResult {
        let scale = self.scale;
        self.baselines
            .entry(workload)
            .or_insert_with(|| run_one(workload, PrefetcherKind::None, scale))
    }

    /// Runs a prefetcher on a workload and reports coverage/overprediction
    /// against the cached baseline, plus the speedup.
    pub fn evaluate(&mut self, workload: Workload, kind: PrefetcherKind) -> Evaluation {
        let result = run_one(workload, kind, self.scale);
        let baseline = self.baseline(workload).clone();
        let coverage = CoverageReport::from_runs(&result, &baseline);
        let speedup = result.speedup_over(&baseline);
        Evaluation {
            workload,
            kind,
            coverage,
            speedup,
            result,
            baseline,
        }
    }
}

/// The outcome of one prefetcher-on-workload evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Workload evaluated.
    pub workload: Workload,
    /// Prefetcher evaluated.
    pub kind: PrefetcherKind,
    /// Coverage / overprediction / accuracy vs the baseline.
    pub coverage: CoverageReport,
    /// Geometric-mean per-core speedup over the baseline.
    pub speedup: f64,
    /// The prefetching run.
    pub result: SimResult,
    /// The baseline run.
    pub baseline: SimResult,
}

impl Evaluation {
    /// Performance improvement as a fraction (paper's Fig. 8 metric).
    pub fn improvement(&self) -> f64 {
        self.speedup - 1.0
    }
}

/// Geometric mean over a nonempty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean over a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_and_have_names() {
        for k in [
            PrefetcherKind::None,
            PrefetcherKind::Bop,
            PrefetcherKind::Spp,
            PrefetcherKind::Vldp,
            PrefetcherKind::Ampm,
            PrefetcherKind::Sms,
            PrefetcherKind::Bingo,
            PrefetcherKind::BingoEntries(4096),
            PrefetcherKind::SingleEvent(EventKind::Offset),
            PrefetcherKind::MultiEvent(3),
            PrefetcherKind::Stride,
            PrefetcherKind::NextLine(2),
        ] {
            let p = k.build();
            assert!(!p.name().is_empty());
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn bingo_has_the_largest_headline_storage() {
        let bingo_kb = PrefetcherKind::Bingo.storage_kb();
        for k in [PrefetcherKind::Bop, PrefetcherKind::Spp, PrefetcherKind::Vldp] {
            assert!(
                k.storage_kb() < bingo_kb,
                "{} should be smaller than Bingo",
                k.name()
            );
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quick_scale_is_smaller() {
        assert!(RunScale::quick().instructions_per_core < RunScale::full().instructions_per_core);
    }
}
