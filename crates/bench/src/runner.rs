//! Experiment runner: builds (workload × prefetcher) simulations, caches
//! no-prefetcher baselines, and derives the paper's metrics.
//!
//! Two harnesses are provided:
//!
//! * [`Harness`] — the original serial runner, evaluating one cell at a
//!   time with a lazily-filled baseline cache;
//! * [`ParallelHarness`] — fans the (workload × prefetcher) grid out
//!   across a bounded pool of scoped worker threads. The grid is
//!   embarrassingly parallel (every cell is an independent simulation),
//!   so the full sweep's wall-clock shrinks to roughly
//!   `cells / min(jobs, cells)` serial cells.
//!
//! **Determinism.** A cell's result is a pure function of
//! `(RunScale::seed, workload, prefetcher kind)`: each cell constructs
//! its own instruction sources (seeded from `scale.seed`, with a per-core
//! stream split inside [`Workload::sources`]) and its own prefetcher, and
//! shares no mutable state with other cells. The prefetcher kind
//! deliberately does *not* perturb the workload's RNG stream — every
//! prefetcher must observe the exact access stream its no-prefetcher
//! baseline observed, or coverage and speedup would compare different
//! program runs. Consequently [`ParallelHarness`] produces bit-for-bit
//! the same [`SimResult`]s as [`Harness`] regardless of scheduling order,
//! worker count, or completion order — verified by the
//! `parallel_matches_serial_bit_for_bit` test below.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bingo::{Bingo, BingoConfig, EventKind, MultiEventConfig, MultiEventPrefetcher};
use bingo_baselines::{
    Ampm, AmpmConfig, Bop, BopConfig, Sms, SmsConfig, Spp, SppConfig, StrideConfig,
    StridePrefetcher, Vldp, VldpConfig,
};
use bingo_sim::{
    CoverageReport, NextLinePrefetcher, NoPrefetcher, Prefetcher, SimResult, System, SystemConfig,
};
use bingo_workloads::Workload;

/// Which prefetcher to attach to every core.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum PrefetcherKind {
    /// No prefetcher (baseline).
    None,
    /// Best-Offset prefetcher, paper configuration.
    Bop,
    /// BOP at degree 32 (Fig. 10 "Aggr").
    BopAggressive,
    /// Signature Path prefetcher, paper configuration.
    Spp,
    /// SPP at a 1 % confidence threshold (Fig. 10 "Aggr").
    SppAggressive,
    /// Variable-Length Delta prefetcher, paper configuration.
    Vldp,
    /// VLDP at degree 32 (Fig. 10 "Aggr").
    VldpAggressive,
    /// Access Map Pattern Matching.
    Ampm,
    /// Spatial Memory Streaming.
    Sms,
    /// Bingo, paper configuration (16 K-entry unified table).
    Bingo,
    /// Bingo with a non-default history size (Fig. 6 sweep).
    BingoEntries(usize),
    /// Bingo with a non-default footprint-voting threshold (ablation).
    BingoVote(f64),
    /// Single-event TAGE-like prefetcher (Fig. 2 sweep).
    SingleEvent(EventKind),
    /// Multi-event cascade over the first `n` events (Fig. 3 sweep; also
    /// the Fig. 4 redundancy vehicle at `n = 2`).
    MultiEvent(usize),
    /// Classic PC-stride prefetcher (reference).
    Stride,
    /// Next-line prefetcher with the given degree (reference).
    NextLine(usize),
}

impl PrefetcherKind {
    /// The six prefetchers of the paper's headline comparison, figure
    /// order.
    pub const HEADLINE: [PrefetcherKind; 6] = [
        PrefetcherKind::Bop,
        PrefetcherKind::Spp,
        PrefetcherKind::Vldp,
        PrefetcherKind::Ampm,
        PrefetcherKind::Sms,
        PrefetcherKind::Bingo,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            PrefetcherKind::None => "None".into(),
            PrefetcherKind::Bop => "BOP".into(),
            PrefetcherKind::BopAggressive => "BOP-Aggr".into(),
            PrefetcherKind::Spp => "SPP".into(),
            PrefetcherKind::SppAggressive => "SPP-Aggr".into(),
            PrefetcherKind::Vldp => "VLDP".into(),
            PrefetcherKind::VldpAggressive => "VLDP-Aggr".into(),
            PrefetcherKind::Ampm => "AMPM".into(),
            PrefetcherKind::Sms => "SMS".into(),
            PrefetcherKind::Bingo => "Bingo".into(),
            PrefetcherKind::BingoEntries(n) => format!("Bingo-{}K", n / 1024),
            PrefetcherKind::BingoVote(t) => format!("Bingo-vote{:.0}%", t * 100.0),
            PrefetcherKind::SingleEvent(k) => k.label().into(),
            PrefetcherKind::MultiEvent(n) => format!("{n}-event"),
            PrefetcherKind::Stride => "Stride".into(),
            PrefetcherKind::NextLine(d) => format!("NextLine-{d}"),
        }
    }

    /// Builds one prefetcher instance.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetcher),
            PrefetcherKind::Bop => Box::new(Bop::new(BopConfig::paper())),
            PrefetcherKind::BopAggressive => Box::new(Bop::new(BopConfig::aggressive())),
            PrefetcherKind::Spp => Box::new(Spp::new(SppConfig::paper())),
            PrefetcherKind::SppAggressive => Box::new(Spp::new(SppConfig::aggressive())),
            PrefetcherKind::Vldp => Box::new(Vldp::new(VldpConfig::paper())),
            PrefetcherKind::VldpAggressive => Box::new(Vldp::new(VldpConfig::aggressive())),
            PrefetcherKind::Ampm => Box::new(Ampm::new(AmpmConfig::paper())),
            PrefetcherKind::Sms => Box::new(Sms::new(SmsConfig::paper())),
            PrefetcherKind::Bingo => Box::new(Bingo::new(BingoConfig::paper())),
            PrefetcherKind::BingoEntries(n) => {
                Box::new(Bingo::new(BingoConfig::with_history_entries(n)))
            }
            PrefetcherKind::BingoVote(t) => Box::new(Bingo::new(BingoConfig {
                vote_threshold: t,
                ..BingoConfig::paper()
            })),
            PrefetcherKind::SingleEvent(k) => {
                Box::new(MultiEventPrefetcher::new(MultiEventConfig::single(k)))
            }
            PrefetcherKind::MultiEvent(n) => {
                Box::new(MultiEventPrefetcher::new(MultiEventConfig::first_n(n)))
            }
            PrefetcherKind::Stride => Box::new(StridePrefetcher::new(StrideConfig::typical())),
            PrefetcherKind::NextLine(d) => Box::new(NextLinePrefetcher::new(d)),
        }
    }

    /// Per-core metadata storage in bits, computed from the configuration
    /// alone. Building a prefetcher just to size it would allocate its
    /// tables — megabytes for Bingo's 16 K-entry history — on every call
    /// of the parallel sweep; the config-level accounting is free and
    /// asserted equal to the built value by a test.
    pub fn storage_bits(self) -> u64 {
        match self {
            PrefetcherKind::None => 0,
            PrefetcherKind::Bop => BopConfig::paper().storage_bits(),
            PrefetcherKind::BopAggressive => BopConfig::aggressive().storage_bits(),
            PrefetcherKind::Spp => SppConfig::paper().storage_bits(),
            PrefetcherKind::SppAggressive => SppConfig::aggressive().storage_bits(),
            PrefetcherKind::Vldp => VldpConfig::paper().storage_bits(),
            PrefetcherKind::VldpAggressive => VldpConfig::aggressive().storage_bits(),
            PrefetcherKind::Ampm => AmpmConfig::paper().storage_bits(),
            PrefetcherKind::Sms => SmsConfig::paper().storage_bits(),
            PrefetcherKind::Bingo => BingoConfig::paper().storage_bits(),
            PrefetcherKind::BingoEntries(n) => BingoConfig::with_history_entries(n).storage_bits(),
            PrefetcherKind::BingoVote(t) => BingoConfig {
                vote_threshold: t,
                ..BingoConfig::paper()
            }
            .storage_bits(),
            PrefetcherKind::SingleEvent(k) => MultiEventConfig::single(k).storage_bits(),
            PrefetcherKind::MultiEvent(n) => MultiEventConfig::first_n(n).storage_bits(),
            PrefetcherKind::Stride => StrideConfig::typical().storage_bits(),
            // Next-line keeps no metadata (trait default).
            PrefetcherKind::NextLine(_) => 0,
        }
    }

    /// Per-core metadata storage in KB (for the performance-density model).
    pub fn storage_kb(self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1024.0
    }
}

/// Simulation scale for an experiment run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RunScale {
    /// Instructions retired per core in the measurement window.
    pub instructions_per_core: u64,
    /// Warmup instructions per core (caches and predictor tables live,
    /// statistics discarded) — the SimFlex warmed-checkpoint methodology.
    pub warmup_per_core: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunScale {
    /// The full scale used for the published numbers in EXPERIMENTS.md.
    pub fn full() -> Self {
        RunScale {
            instructions_per_core: 1_000_000,
            warmup_per_core: 1_500_000,
            seed: 42,
        }
    }

    /// A reduced scale for CI and Criterion.
    pub fn quick() -> Self {
        RunScale {
            instructions_per_core: 150_000,
            warmup_per_core: 100_000,
            seed: 42,
        }
    }

    /// Reads `--quick` from the process arguments (exact match, any
    /// position), then applies the `BINGO_WARMUP` / `BINGO_INSTR`
    /// environment overrides (development knobs for calibration sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `BINGO_WARMUP` or `BINGO_INSTR` is set but does not parse
    /// as an unsigned integer: a typo'd override must abort the run, not
    /// silently fall back to the full scale.
    pub fn from_args() -> Self {
        Self::from_parts(std::env::args().skip(1), |name| std::env::var(name).ok())
    }

    /// Testable core of [`RunScale::from_args`]: explicit argument list
    /// and environment lookup.
    fn from_parts<I, E>(args: I, env: E) -> Self
    where
        I: IntoIterator<Item = String>,
        E: Fn(&str) -> Option<String>,
    {
        let mut scale = if args.into_iter().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        };
        if let Some(v) = env("BINGO_WARMUP") {
            scale.warmup_per_core = parse_override("BINGO_WARMUP", &v);
        }
        if let Some(v) = env("BINGO_INSTR") {
            scale.instructions_per_core = parse_override("BINGO_INSTR", &v);
        }
        scale
    }
}

/// Parses a numeric environment override, aborting loudly on garbage.
fn parse_override(name: &str, value: &str) -> u64 {
    value
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{name} must be an unsigned integer, got {value:?}"))
}

/// Runs one (workload, prefetcher) simulation on the paper's 4-core system.
pub fn run_one(workload: Workload, kind: PrefetcherKind, scale: RunScale) -> SimResult {
    let cfg = SystemConfig::paper();
    let sources = workload.sources(cfg.cores, scale.seed);
    let system =
        System::with_prefetchers(cfg, sources, |_| kind.build(), scale.instructions_per_core)
            .with_warmup(scale.warmup_per_core);
    system.run()
}

/// Worker count for parallel sweeps: the `BINGO_JOBS` environment override
/// when set, otherwise [`std::thread::available_parallelism`] (1 if that
/// cannot be determined).
///
/// # Panics
///
/// Panics if `BINGO_JOBS` is set but is not a positive integer.
pub fn default_jobs() -> usize {
    match std::env::var("BINGO_JOBS") {
        Ok(v) => {
            let jobs: usize = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("BINGO_JOBS must be a positive integer, got {v:?}"));
            assert!(jobs > 0, "BINGO_JOBS must be a positive integer, got 0");
            jobs
        }
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Runs `f(0), f(1), ..., f(n - 1)` on a bounded pool of at most `jobs`
/// scoped worker threads and returns the results in index order.
///
/// Workers pull indices from a shared atomic counter, so cells are load
/// balanced dynamically; results land in per-index slots, so the output
/// order is independent of completion order. With `jobs <= 1` (or a single
/// item) the calls run inline on the current thread.
///
/// # Panics
///
/// Panics if `jobs` is zero, or propagates a panic from `f`.
pub fn parallel_map<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(jobs > 0, "need at least one worker");
    let workers = jobs.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("a worker panicked") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("a worker panicked")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// Runs one cell, optionally emitting a progress/timing line (cell name,
/// wall seconds, simulated instructions per wall second).
fn timed_run(
    workload: Workload,
    kind: PrefetcherKind,
    scale: RunScale,
    progress: bool,
) -> SimResult {
    let start = Instant::now();
    let result = run_one(workload, kind, scale);
    if progress {
        let wall = start.elapsed().as_secs_f64();
        eprintln!(
            "[cell] {:<14} {:<14} {:>7.2}s  {:>6.2} Minstr/s",
            workload.name(),
            kind.name(),
            wall,
            result.instructions() as f64 / wall.max(1e-9) / 1e6,
        );
    }
    result
}

/// Serial runner with per-workload baseline caching.
#[derive(Debug, Default)]
pub struct Harness {
    scale: RunScale,
    baselines: HashMap<Workload, SimResult>,
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale::full()
    }
}

impl Harness {
    /// Creates a harness at the given scale.
    pub fn new(scale: RunScale) -> Self {
        Harness {
            scale,
            baselines: HashMap::new(),
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// The cached no-prefetcher baseline for a workload.
    pub fn baseline(&mut self, workload: Workload) -> &SimResult {
        let scale = self.scale;
        self.baselines
            .entry(workload)
            .or_insert_with(|| run_one(workload, PrefetcherKind::None, scale))
    }

    /// Runs a prefetcher on a workload and reports coverage/overprediction
    /// against the cached baseline, plus the speedup.
    pub fn evaluate(&mut self, workload: Workload, kind: PrefetcherKind) -> Evaluation {
        let result = run_one(workload, kind, self.scale);
        let baseline = self.baseline(workload).clone();
        let coverage = CoverageReport::from_runs(&result, &baseline);
        let speedup = result.speedup_over(&baseline);
        Evaluation {
            workload,
            kind,
            coverage,
            speedup,
            result,
            baseline,
        }
    }
}

/// Parallel experiment harness: evaluates (workload × prefetcher) grids on
/// a bounded worker pool, computing each workload's no-prefetcher baseline
/// exactly once in a shared cache.
///
/// Results are bit-for-bit identical to [`Harness`] — see the module docs
/// for the determinism argument.
#[derive(Debug)]
pub struct ParallelHarness {
    scale: RunScale,
    jobs: usize,
    progress: bool,
    baselines: HashMap<Workload, SimResult>,
}

impl ParallelHarness {
    /// Creates a parallel harness at the given scale with
    /// [`default_jobs`] workers.
    pub fn new(scale: RunScale) -> Self {
        Self::with_jobs(scale, default_jobs())
    }

    /// Creates a parallel harness with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_jobs(scale: RunScale, jobs: usize) -> Self {
        assert!(jobs > 0, "need at least one worker");
        ParallelHarness {
            scale,
            jobs,
            progress: true,
            baselines: HashMap::new(),
        }
    }

    /// Disables the per-cell progress/timing lines on stderr.
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// The scale in use.
    pub fn scale(&self) -> RunScale {
        self.scale
    }

    /// The worker count in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Ensures the no-prefetcher baseline of every listed workload is
    /// cached, computing the missing ones in parallel — each exactly once,
    /// regardless of how many cells reference it.
    pub fn prime_baselines(&mut self, workloads: &[Workload]) {
        let mut missing: Vec<Workload> = Vec::new();
        for &w in workloads {
            if !self.baselines.contains_key(&w) && !missing.contains(&w) {
                missing.push(w);
            }
        }
        if missing.is_empty() {
            return;
        }
        let scale = self.scale;
        let progress = self.progress;
        let results = parallel_map(self.jobs, missing.len(), |i| {
            timed_run(missing[i], PrefetcherKind::None, scale, progress)
        });
        for (w, r) in missing.into_iter().zip(results) {
            self.baselines.insert(w, r);
        }
    }

    /// The cached no-prefetcher baseline for a workload.
    pub fn baseline(&mut self, workload: Workload) -> &SimResult {
        self.prime_baselines(&[workload]);
        &self.baselines[&workload]
    }

    /// Evaluates every (workload, prefetcher) cell of `cells` across the
    /// worker pool and returns the evaluations in input order.
    pub fn evaluate_grid(&mut self, cells: &[(Workload, PrefetcherKind)]) -> Vec<Evaluation> {
        let workloads: Vec<Workload> = cells.iter().map(|&(w, _)| w).collect();
        self.prime_baselines(&workloads);
        let scale = self.scale;
        let progress = self.progress;
        let started = Instant::now();
        let results = parallel_map(self.jobs, cells.len(), |i| {
            let (w, k) = cells[i];
            timed_run(w, k, scale, progress)
        });
        if progress && cells.len() > 1 {
            eprintln!(
                "[grid] {} cells in {:.1}s on {} worker(s)",
                cells.len(),
                started.elapsed().as_secs_f64(),
                self.jobs.min(cells.len()),
            );
        }
        cells
            .iter()
            .zip(results)
            .map(|(&(workload, kind), result)| {
                let baseline = self.baselines[&workload].clone();
                let coverage = CoverageReport::from_runs(&result, &baseline);
                let speedup = result.speedup_over(&baseline);
                Evaluation {
                    workload,
                    kind,
                    coverage,
                    speedup,
                    result,
                    baseline,
                }
            })
            .collect()
    }

    /// Row-major convenience over [`ParallelHarness::evaluate_grid`]:
    /// every kind on every workload, grouped by workload (the result for
    /// `workloads[i]` × `kinds[j]` is at index `i * kinds.len() + j`).
    pub fn evaluate_all(
        &mut self,
        workloads: &[Workload],
        kinds: &[PrefetcherKind],
    ) -> Vec<Evaluation> {
        let cells: Vec<(Workload, PrefetcherKind)> = workloads
            .iter()
            .flat_map(|&w| kinds.iter().map(move |&k| (w, k)))
            .collect();
        self.evaluate_grid(&cells)
    }

    /// Evaluates a single cell (uses the shared baseline cache).
    pub fn evaluate(&mut self, workload: Workload, kind: PrefetcherKind) -> Evaluation {
        self.evaluate_grid(&[(workload, kind)])
            .pop()
            .expect("one cell in, one evaluation out")
    }
}

/// The outcome of one prefetcher-on-workload evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Workload evaluated.
    pub workload: Workload,
    /// Prefetcher evaluated.
    pub kind: PrefetcherKind,
    /// Coverage / overprediction / accuracy vs the baseline.
    pub coverage: CoverageReport,
    /// Geometric-mean per-core speedup over the baseline.
    pub speedup: f64,
    /// The prefetching run.
    pub result: SimResult,
    /// The baseline run.
    pub baseline: SimResult,
}

impl Evaluation {
    /// Performance improvement as a fraction (paper's Fig. 8 metric).
    pub fn improvement(&self) -> f64 {
        self.speedup - 1.0
    }
}

/// Geometric mean over a nonempty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean over a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every constructible kind, one representative per variant.
    fn all_kinds() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::None,
            PrefetcherKind::Bop,
            PrefetcherKind::BopAggressive,
            PrefetcherKind::Spp,
            PrefetcherKind::SppAggressive,
            PrefetcherKind::Vldp,
            PrefetcherKind::VldpAggressive,
            PrefetcherKind::Ampm,
            PrefetcherKind::Sms,
            PrefetcherKind::Bingo,
            PrefetcherKind::BingoEntries(4096),
            PrefetcherKind::BingoVote(0.5),
            PrefetcherKind::SingleEvent(EventKind::Offset),
            PrefetcherKind::MultiEvent(3),
            PrefetcherKind::Stride,
            PrefetcherKind::NextLine(2),
        ]
    }

    #[test]
    fn kinds_build_and_have_names() {
        for k in all_kinds() {
            let p = k.build();
            assert!(!p.name().is_empty());
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn storage_from_config_matches_built_prefetcher() {
        for k in all_kinds() {
            assert_eq!(
                k.storage_bits(),
                k.build().storage_bits(),
                "config-level storage of {} disagrees with the built table",
                k.name()
            );
        }
    }

    #[test]
    fn bingo_has_the_largest_headline_storage() {
        let bingo_kb = PrefetcherKind::Bingo.storage_kb();
        for k in [
            PrefetcherKind::Bop,
            PrefetcherKind::Spp,
            PrefetcherKind::Vldp,
        ] {
            assert!(
                k.storage_kb() < bingo_kb,
                "{} should be smaller than Bingo",
                k.name()
            );
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quick_scale_is_smaller() {
        assert!(RunScale::quick().instructions_per_core < RunScale::full().instructions_per_core);
    }

    #[test]
    fn from_parts_reads_quick_flag_exactly() {
        let none = |_: &str| None;
        let quick = RunScale::from_parts(vec!["--quick".to_string()], none);
        assert_eq!(quick, RunScale::quick());
        let full = RunScale::from_parts(Vec::new(), none);
        assert_eq!(full, RunScale::full());
        // Near-misses must not enable quick mode.
        let near = RunScale::from_parts(
            vec![
                "--quickly".to_string(),
                "quick".to_string(),
                "--QUICK".to_string(),
            ],
            none,
        );
        assert_eq!(near, RunScale::full());
    }

    #[test]
    fn from_parts_applies_env_overrides() {
        let env = |name: &str| match name {
            "BINGO_WARMUP" => Some("1234".to_string()),
            "BINGO_INSTR" => Some("5678".to_string()),
            _ => None,
        };
        let scale = RunScale::from_parts(vec!["--quick".to_string()], env);
        assert_eq!(scale.warmup_per_core, 1234);
        assert_eq!(scale.instructions_per_core, 5678);
        assert_eq!(scale.seed, RunScale::quick().seed);
    }

    #[test]
    #[should_panic(expected = "BINGO_WARMUP must be an unsigned integer")]
    fn from_parts_rejects_garbage_warmup() {
        let env = |name: &str| (name == "BINGO_WARMUP").then(|| "1e6".to_string());
        let _ = RunScale::from_parts(Vec::new(), env);
    }

    #[test]
    #[should_panic(expected = "BINGO_INSTR must be an unsigned integer")]
    fn from_parts_rejects_garbage_instr() {
        let env = |name: &str| (name == "BINGO_INSTR").then(|| "100k".to_string());
        let _ = RunScale::from_parts(Vec::new(), env);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(8, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate worker counts.
        assert_eq!(parallel_map(1, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(parallel_map(64, 1, |i| i), vec![0]);
        assert_eq!(parallel_map(4, 0, |i| i), Vec::<usize>::new());
    }

    /// The acceptance test of the parallel harness: identical
    /// [`SimResult`]s (speedups, coverage, miss counts) to the serial
    /// [`Harness`] on a 3 × 3 grid, independent of scheduling.
    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let scale = RunScale {
            instructions_per_core: 20_000,
            warmup_per_core: 10_000,
            seed: 7,
        };
        let workloads = [Workload::Em3d, Workload::Streaming, Workload::Mix1];
        let kinds = [
            PrefetcherKind::Bingo,
            PrefetcherKind::Bop,
            PrefetcherKind::Sms,
        ];
        let cells: Vec<(Workload, PrefetcherKind)> = workloads
            .iter()
            .flat_map(|&w| kinds.iter().map(move |&k| (w, k)))
            .collect();
        let mut parallel = ParallelHarness::with_jobs(scale, 4).quiet();
        let par = parallel.evaluate_grid(&cells);
        let mut serial = Harness::new(scale);
        for (&(w, k), pe) in cells.iter().zip(&par) {
            let se = serial.evaluate(w, k);
            assert_eq!(pe.workload, w);
            assert_eq!(pe.kind, k);
            assert_eq!(se.result, pe.result, "{w} / {}: result differs", k.name());
            assert_eq!(
                se.baseline,
                pe.baseline,
                "{w} / {}: baseline differs",
                k.name()
            );
            assert_eq!(
                se.speedup.to_bits(),
                pe.speedup.to_bits(),
                "{w} / {}: speedup differs ({} vs {})",
                k.name(),
                se.speedup,
                pe.speedup
            );
            assert_eq!(
                se.coverage,
                pe.coverage,
                "{w} / {}: coverage report differs",
                k.name()
            );
        }
    }

    #[test]
    fn parallel_baseline_is_computed_once_and_shared() {
        let scale = RunScale {
            instructions_per_core: 10_000,
            warmup_per_core: 5_000,
            seed: 3,
        };
        let mut h = ParallelHarness::with_jobs(scale, 2).quiet();
        // Many cells over one workload: one baseline, shared by all.
        let evals = h.evaluate_all(
            &[Workload::Streaming],
            &[PrefetcherKind::NextLine(1), PrefetcherKind::Stride],
        );
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0].baseline, evals[1].baseline);
        assert_eq!(h.baseline(Workload::Streaming), &evals[0].baseline);
    }
}
