//! Crash-safe sweep checkpoints: a JSONL file of completed cell results.
//!
//! A long sweep killed mid-run (OOM, ^C, node preemption) loses hours of
//! finished cells. The checkpoint makes each cell's [`SimResult`] durable
//! the moment it completes: one self-contained JSON line per cell, appended
//! and flushed immediately, keyed by everything that determines the result
//! — `(seed, instructions, warmup, workload, prefetcher kind)`. A resumed
//! sweep pointed at the same file replays the finished cells from disk and
//! only simulates the missing ones; because a cell's result is a pure
//! function of its key (see the determinism notes in [`crate::runner`]),
//! the resumed sweep is **bit-for-bit identical** to an uninterrupted one —
//! test-locked by `resume_is_bit_for_bit_identical`.
//!
//! Robustness properties:
//!
//! * a torn final line (the process died mid-write) is skipped, not fatal;
//! * corrupt or hand-edited lines are skipped the same way, and counted in
//!   [`Checkpoint::skipped_lines`] so tampering is visible;
//! * floats are stored as IEEE-754 bit patterns (`f64::to_bits`), so a
//!   round trip through the file cannot lose precision — "resume equals
//!   fresh run" holds at the bit level, not merely approximately;
//! * only successful cells are recorded: a panicked or timed-out cell is
//!   retried on resume rather than replayed as a failure.
//!
//! The format is deliberately hand-rolled (this workspace builds offline,
//! without serde): a tiny JSON subset — objects, arrays, strings, and
//! unsigned integers — wide enough for [`SimResult`] and nothing else.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use bingo_sim::{
    CacheStats, CoreQos, CoreStats, IngestReport, QosReport, SimResult, SourceCounters,
    TelemetryReport,
};

/// Environment variable naming the checkpoint file for CLI sweeps.
pub const CHECKPOINT_ENV: &str = "BINGO_CHECKPOINT";

/// A durable map from cell key to completed [`SimResult`], backed by an
/// append-only JSONL file.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    entries: Mutex<HashMap<String, SimResult>>,
    writer: Mutex<File>,
    skipped: usize,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint file, loading every parseable
    /// entry. Unparseable lines — torn tails, hand-edits, bit rot — are
    /// skipped and counted, never fatal.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading or opening the file itself.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        let mut skipped = 0;
        match File::open(&path) {
            Ok(mut f) => {
                let mut text = String::new();
                f.read_to_string(&mut text)?;
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_entry(line) {
                        Some((key, result)) => {
                            entries.insert(key, result);
                        }
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let writer = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Checkpoint {
            path,
            entries: Mutex::new(entries),
            writer: Mutex::new(writer),
            skipped,
        })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of loaded entries.
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// Whether no entry was loaded or recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines of the existing file that did not parse and were ignored.
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// The recorded result for a cell key, if any.
    pub fn get(&self, key: &str) -> Option<SimResult> {
        lock(&self.entries).get(key).cloned()
    }

    /// Records a completed cell: inserted in memory and appended to the
    /// file with an immediate flush, so the entry survives a kill right
    /// after this call returns. Write errors are reported, not silently
    /// swallowed — but the in-memory entry stays either way, so the
    /// current sweep keeps its result.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from appending to the checkpoint file.
    pub fn record(&self, key: &str, result: &SimResult) -> io::Result<()> {
        let line = serialize_entry(key, result);
        lock(&self.entries).insert(key.to_string(), result.clone());
        let mut writer = lock(&self.writer);
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    }
}

/// Locks a mutex, ignoring poisoning: checkpoint state is a plain map and
/// stays consistent even if another thread panicked mid-sweep.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// --- serialization -------------------------------------------------------

pub(crate) fn serialize_entry(key: &str, r: &SimResult) -> String {
    let mut s = String::with_capacity(512);
    s.push_str("{\"key\":");
    push_json_string(&mut s, key);
    s.push_str(",\"cores\":[");
    for (i, c) in r.cores.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "[{},{},{},{},{},{}]",
            c.instructions,
            c.cycles,
            c.loads,
            c.stores,
            c.dispatch_stall_cycles,
            c.dependency_stall_cycles
        ));
    }
    s.push_str("],\"l1d\":");
    push_cache(&mut s, &r.l1d);
    s.push_str(",\"llc\":");
    push_cache(&mut s, &r.llc);
    s.push_str(&format!(
        ",\"dram_transfers\":{},\"total_cycles\":{},\"debug\":[",
        r.dram_transfers, r.total_cycles
    ));
    for (i, d) in r.prefetcher_debug.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_json_string(&mut s, d);
    }
    s.push_str("],\"metrics\":[");
    for (i, core) in r.prefetcher_metrics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (j, (name, value)) in core.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push('[');
            push_json_string(&mut s, name);
            // f64 as IEEE-754 bits: exact round trip, no decimal formatting.
            s.push_str(&format!(",{}]", value.to_bits()));
        }
        s.push(']');
    }
    s.push(']');
    // The telemetry field is optional: absent when the run had telemetry
    // off, so files written before the field existed still parse.
    if let Some(t) = &r.telemetry {
        s.push_str(",\"telemetry\":{\"counts\":");
        // `dropped_queue` rides at the end, mirroring `push_cache`: the
        // first ten indices match pre-queue checkpoint files.
        s.push_str(&format!(
            "[{},{},{},{},{},{},{},{},{},{},{}]",
            t.issued,
            t.dropped_duplicate,
            t.dropped_mshr,
            t.timely,
            t.late,
            t.unused,
            t.fills,
            t.fill_latency_sum,
            t.in_flight_at_end,
            t.orphans,
            t.dropped_queue
        ));
        s.push_str(",\"by_source\":[");
        for (i, (label, c)) in t.by_source.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            push_json_string(&mut s, label);
            s.push(',');
            push_source_counters(&mut s, c);
            s.push(']');
        }
        s.push_str("],\"hot_pcs\":[");
        for (i, (pc, c)) in t.hot_pcs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{pc},"));
            push_source_counters(&mut s, c);
            s.push(']');
        }
        s.push_str("]}");
    }
    // Also optional: only trace-replay cells carry ingestion accounting,
    // and pre-ingest checkpoint files still parse (absent field → None).
    if let Some(g) = &r.ingest {
        s.push_str(&format!(
            ",\"ingest\":[{},{},{},{}]",
            g.delivered_records, g.quarantined_records, g.quarantined_bytes, g.skipped_chunks
        ));
    }
    // Optional again: only `percore`-throttled runs carry QoS accounting.
    // Absent field -> None keeps every earlier checkpoint generation
    // parseable, and `off|static|feedback` lines byte-identical.
    if let Some(q) = &r.qos {
        s.push_str(",\"qos\":{\"cores\":[");
        for (i, c) in q.cores.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "[{},{},{},{},{},{},{},{},{}]",
                c.demand_accesses,
                c.pf_issued,
                c.pf_used,
                c.prefetch_reads,
                c.reads,
                c.epochs,
                c.degrades,
                c.upgrades,
                c.final_level
            ));
        }
        s.push_str(&format!(
            "],\"watchdog\":[{},{},{},{}]}}",
            q.watchdog_epochs, q.watchdog_starved_epochs, q.watchdog_clamps, q.watchdog_exempted
        ));
    }
    s.push('}');
    s
}

fn push_source_counters(s: &mut String, c: &SourceCounters) {
    s.push_str(&format!(
        "[{},{},{},{},{}]",
        c.issued, c.timely, c.late, c.unused, c.dropped
    ));
}

fn push_cache(s: &mut String, c: &CacheStats) {
    // `pf_dropped_queue` rides at the *end* (not at its struct position)
    // so every index written by pre-queue checkpoints stays valid; see
    // `parse_cache` for the matching 14-or-15 acceptance.
    s.push_str(&format!(
        "[{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}]",
        c.demand_accesses,
        c.demand_hits,
        c.demand_hits_pending,
        c.demand_misses,
        c.demand_mshr_stalls,
        c.evictions,
        c.writebacks,
        c.pf_requested,
        c.pf_dropped_duplicate,
        c.pf_dropped_mshr,
        c.pf_issued,
        c.pf_useful,
        c.pf_late,
        c.pf_useless,
        c.pf_dropped_queue
    ));
}

fn push_json_string(s: &mut String, value: &str) {
    s.push('"');
    for ch in value.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

// --- parsing -------------------------------------------------------------

/// Minimal JSON value: the subset the checkpoint format emits.
#[derive(Debug)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                    let _ = b;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Json::Num)
    }
}

/// Parses one checkpoint line into `(key, result)`; `None` on any
/// malformation — the caller skips the line.
fn parse_entry(line: &str) -> Option<(String, SimResult)> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None; // trailing garbage: treat the whole line as torn
    }
    let key = match root.field("key")? {
        Json::Str(s) => s.clone(),
        _ => return None,
    };
    let cores = root
        .field("cores")?
        .arr()?
        .iter()
        .map(parse_core)
        .collect::<Option<Vec<_>>>()?;
    let result = SimResult {
        cores,
        l1d: parse_cache(root.field("l1d")?)?,
        llc: parse_cache(root.field("llc")?)?,
        dram_transfers: root.field("dram_transfers")?.num()?,
        total_cycles: root.field("total_cycles")?.num()?,
        prefetcher_debug: root
            .field("debug")?
            .arr()?
            .iter()
            .map(|v| match v {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?,
        prefetcher_metrics: root
            .field("metrics")?
            .arr()?
            .iter()
            .map(parse_metrics)
            .collect::<Option<Vec<_>>>()?,
        // Optional: pre-telemetry checkpoint lines simply have no field.
        telemetry: match root.field("telemetry") {
            Some(v) => Some(parse_telemetry(v)?),
            None => None,
        },
        // Optional for the same reason: pre-ingest lines have no field.
        ingest: match root.field("ingest") {
            Some(v) => Some(parse_ingest(v)?),
            None => None,
        },
        // Optional: only percore-throttled lines carry QoS accounting.
        qos: match root.field("qos") {
            Some(v) => Some(parse_qos(v)?),
            None => None,
        },
    };
    Some((key, result))
}

fn parse_ingest(v: &Json) -> Option<IngestReport> {
    let a = v.arr()?;
    // Exactly 4 today; extra counters would ride at the end, so accept
    // longer arrays for forward compatibility but never shorter.
    if a.len() < 4 {
        return None;
    }
    Some(IngestReport {
        delivered_records: a[0].num()?,
        quarantined_records: a[1].num()?,
        quarantined_bytes: a[2].num()?,
        skipped_chunks: a[3].num()?,
    })
}

fn parse_qos(v: &Json) -> Option<QosReport> {
    let cores = v
        .field("cores")?
        .arr()?
        .iter()
        .map(|c| {
            let a = c.arr()?;
            // Exactly 9 today; extras would ride at the end.
            if a.len() < 9 {
                return None;
            }
            Some(CoreQos {
                demand_accesses: a[0].num()?,
                pf_issued: a[1].num()?,
                pf_used: a[2].num()?,
                prefetch_reads: a[3].num()?,
                reads: a[4].num()?,
                epochs: a[5].num()?,
                degrades: a[6].num()?,
                upgrades: a[7].num()?,
                final_level: u8::try_from(a[8].num()?).ok()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let wd = v.field("watchdog")?.arr()?;
    if wd.len() < 4 {
        return None;
    }
    Some(QosReport {
        cores,
        watchdog_epochs: wd[0].num()?,
        watchdog_starved_epochs: wd[1].num()?,
        watchdog_clamps: wd[2].num()?,
        watchdog_exempted: wd[3].num()?,
    })
}

fn parse_telemetry(v: &Json) -> Option<TelemetryReport> {
    let counts = v.field("counts")?.arr()?;
    // 10 = pre-queue format (queue drops definitionally zero); 11 = current.
    if counts.len() != 10 && counts.len() != 11 {
        return None;
    }
    Some(TelemetryReport {
        issued: counts[0].num()?,
        dropped_duplicate: counts[1].num()?,
        dropped_mshr: counts[2].num()?,
        timely: counts[3].num()?,
        late: counts[4].num()?,
        unused: counts[5].num()?,
        fills: counts[6].num()?,
        fill_latency_sum: counts[7].num()?,
        in_flight_at_end: counts[8].num()?,
        orphans: counts[9].num()?,
        dropped_queue: match counts.get(10) {
            Some(n) => n.num()?,
            None => 0,
        },
        by_source: v
            .field("by_source")?
            .arr()?
            .iter()
            .map(|pair| {
                let a = pair.arr()?;
                if a.len() != 2 {
                    return None;
                }
                let label = match &a[0] {
                    Json::Str(s) => s.clone(),
                    _ => return None,
                };
                Some((label, parse_source_counters(&a[1])?))
            })
            .collect::<Option<Vec<_>>>()?,
        hot_pcs: v
            .field("hot_pcs")?
            .arr()?
            .iter()
            .map(|pair| {
                let a = pair.arr()?;
                if a.len() != 2 {
                    return None;
                }
                Some((a[0].num()?, parse_source_counters(&a[1])?))
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn parse_source_counters(v: &Json) -> Option<SourceCounters> {
    let a = v.arr()?;
    if a.len() != 5 {
        return None;
    }
    Some(SourceCounters {
        issued: a[0].num()?,
        timely: a[1].num()?,
        late: a[2].num()?,
        unused: a[3].num()?,
        dropped: a[4].num()?,
    })
}

fn parse_core(v: &Json) -> Option<CoreStats> {
    let a = v.arr()?;
    if a.len() != 6 {
        return None;
    }
    Some(CoreStats {
        instructions: a[0].num()?,
        cycles: a[1].num()?,
        loads: a[2].num()?,
        stores: a[3].num()?,
        dispatch_stall_cycles: a[4].num()?,
        dependency_stall_cycles: a[5].num()?,
    })
}

fn parse_cache(v: &Json) -> Option<CacheStats> {
    let a = v.arr()?;
    // 14 = pre-queue format (no bounded prefetch queue existed, so its
    // drop count is definitionally zero); 15 = current format.
    if a.len() != 14 && a.len() != 15 {
        return None;
    }
    Some(CacheStats {
        demand_accesses: a[0].num()?,
        demand_hits: a[1].num()?,
        demand_hits_pending: a[2].num()?,
        demand_misses: a[3].num()?,
        demand_mshr_stalls: a[4].num()?,
        evictions: a[5].num()?,
        writebacks: a[6].num()?,
        pf_requested: a[7].num()?,
        pf_dropped_duplicate: a[8].num()?,
        pf_dropped_mshr: a[9].num()?,
        pf_issued: a[10].num()?,
        pf_useful: a[11].num()?,
        pf_late: a[12].num()?,
        pf_useless: a[13].num()?,
        pf_dropped_queue: match a.get(14) {
            Some(n) => n.num()?,
            None => 0,
        },
    })
}

fn parse_metrics(v: &Json) -> Option<Vec<(&'static str, f64)>> {
    v.arr()?
        .iter()
        .map(|pair| {
            let a = pair.arr()?;
            if a.len() != 2 {
                return None;
            }
            let name = match &a[0] {
                // Metric names are `&'static str` in SimResult; the small,
                // bounded set of distinct names makes leaking them the
                // pragmatic way to restore that lifetime from a file.
                Json::Str(s) => &*Box::leak(s.clone().into_boxed_str()),
                _ => return None,
            };
            Some((name, f64::from_bits(a[1].num()?)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(salt: u64) -> SimResult {
        SimResult {
            cores: vec![
                CoreStats {
                    instructions: 100 + salt,
                    cycles: 250,
                    loads: 30,
                    stores: 10,
                    dispatch_stall_cycles: 5,
                    dependency_stall_cycles: 7,
                },
                CoreStats {
                    instructions: 90,
                    cycles: 260,
                    loads: 28,
                    stores: 12,
                    dispatch_stall_cycles: 6,
                    dependency_stall_cycles: 8,
                },
            ],
            l1d: CacheStats {
                demand_accesses: 40,
                demand_hits: 30,
                demand_misses: 10,
                ..CacheStats::default()
            },
            llc: CacheStats {
                demand_accesses: 10,
                demand_misses: 4,
                pf_issued: 3,
                pf_useful: 2,
                pf_dropped_queue: 1,
                ..CacheStats::default()
            },
            dram_transfers: 9,
            total_cycles: 260,
            prefetcher_debug: vec![
                "plain".to_string(),
                "quotes \" and \\ and\nnewline \u{1} unicode é".to_string(),
            ],
            prefetcher_metrics: vec![
                vec![
                    ("coverage", 0.1 + salt as f64 * 1e-3),
                    ("nan_metric", f64::NAN),
                ],
                vec![],
            ],
            telemetry: None,
            ingest: None,
            qos: None,
        }
    }

    fn sample_telemetry(salt: u64) -> TelemetryReport {
        let c = |base: u64| SourceCounters {
            issued: base,
            timely: base / 2,
            late: base / 4,
            unused: base / 8,
            dropped: base / 16,
        };
        TelemetryReport {
            issued: 100 + salt,
            dropped_duplicate: 3,
            dropped_mshr: 2,
            dropped_queue: 1,
            timely: 60,
            late: 20,
            unused: 20,
            fills: 95,
            fill_latency_sum: 40_000,
            in_flight_at_end: 0,
            orphans: 0,
            by_source: vec![("long".to_string(), c(64)), ("short".to_string(), c(32))],
            hot_pcs: vec![(0x400, c(48)), (0x1234, c(16))],
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bingo-checkpoint-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Equality that also holds for NaN metrics (SimResult's PartialEq
    /// would reject NaN == NaN; the checkpoint must preserve even that).
    fn assert_bit_equal(a: &SimResult, b: &SimResult) {
        assert_eq!(a.cores, b.cores);
        assert_eq!(a.l1d, b.l1d);
        assert_eq!(a.llc, b.llc);
        assert_eq!(a.dram_transfers, b.dram_transfers);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.prefetcher_debug, b.prefetcher_debug);
        assert_eq!(a.prefetcher_metrics.len(), b.prefetcher_metrics.len());
        for (ca, cb) in a.prefetcher_metrics.iter().zip(&b.prefetcher_metrics) {
            assert_eq!(ca.len(), cb.len());
            for ((na, va), (nb, vb)) in ca.iter().zip(cb) {
                assert_eq!(na, nb);
                assert_eq!(va.to_bits(), vb.to_bits(), "metric {na} lost bits");
            }
        }
        assert_eq!(a.telemetry, b.telemetry);
    }

    #[test]
    fn round_trip_preserves_every_bit() {
        let r = sample_result(1);
        let line = serialize_entry("42/1000/500/Em3d/Bingo", &r);
        let (key, parsed) = parse_entry(&line).expect("own output parses");
        assert_eq!(key, "42/1000/500/Em3d/Bingo");
        assert_bit_equal(&r, &parsed);
    }

    #[test]
    fn round_trip_preserves_telemetry() {
        let mut r = sample_result(2);
        r.telemetry = Some(sample_telemetry(7));
        let line = serialize_entry("42/1000/500/Em3d/Bingo/telemetry=counts", &r);
        let (_, parsed) = parse_entry(&line).expect("own output parses");
        assert_bit_equal(&r, &parsed);
        // A pre-telemetry reader shape (no field) still parses to None.
        let plain = serialize_entry("k", &sample_result(2));
        let (_, parsed) = parse_entry(&plain).expect("parses");
        assert!(parsed.telemetry.is_none());
    }

    #[test]
    fn round_trip_preserves_ingest_report() {
        let mut r = sample_result(9);
        r.ingest = Some(bingo_sim::IngestReport {
            delivered_records: 10_000,
            quarantined_records: 37,
            quarantined_bytes: 612,
            skipped_chunks: 3,
        });
        let line = serialize_entry("trace:/tmp/t/10/5/Bingo", &r);
        let (key, parsed) = parse_entry(&line).expect("parses");
        assert_eq!(key, "trace:/tmp/t/10/5/Bingo");
        assert_eq!(parsed.ingest, r.ingest);
        // Pre-ingest lines (no field) parse to None.
        let plain = serialize_entry("k", &sample_result(2));
        let (_, parsed) = parse_entry(&plain).expect("parses");
        assert!(parsed.ingest.is_none());
        // Longer arrays (future counters ride at the end) still parse;
        // shorter ones are rejected as corrupt.
        let extended = line.replace(
            "\"ingest\":[10000,37,612,3]",
            "\"ingest\":[10000,37,612,3,8]",
        );
        assert_ne!(extended, line, "replacement must hit");
        assert_eq!(parse_entry(&extended).expect("parses").1.ingest, r.ingest);
        let torn = line.replace("\"ingest\":[10000,37,612,3]", "\"ingest\":[10000,37]");
        assert!(parse_entry(&torn).is_none(), "2-element ingest is corrupt");
    }

    #[test]
    fn round_trip_preserves_qos_report() {
        let mut r = sample_result(11);
        r.qos = Some(QosReport {
            cores: vec![
                CoreQos {
                    demand_accesses: 5_000,
                    pf_issued: 900,
                    pf_used: 700,
                    prefetch_reads: 850,
                    reads: 1_400,
                    epochs: 12,
                    degrades: 2,
                    upgrades: 1,
                    final_level: 1,
                },
                CoreQos {
                    demand_accesses: 4_800,
                    pf_issued: 40,
                    pf_used: 39,
                    prefetch_reads: 38,
                    reads: 620,
                    epochs: 12,
                    degrades: 0,
                    upgrades: 0,
                    final_level: 0,
                },
            ],
            watchdog_epochs: 6,
            watchdog_starved_epochs: 2,
            watchdog_clamps: 1,
            watchdog_exempted: 0,
        });
        let line = serialize_entry("42/1000/500/mix/throttle=percore", &r);
        let (key, parsed) = parse_entry(&line).expect("own output parses");
        assert_eq!(key, "42/1000/500/mix/throttle=percore");
        assert_eq!(parsed.qos, r.qos);
        // Pre-qos lines (no field) parse to None, and a qos-free result
        // serializes without the field at all — off/static/feedback lines
        // stay byte-identical to what older builds wrote.
        let plain = serialize_entry("k", &sample_result(11));
        assert!(!plain.contains("\"qos\""));
        let (_, parsed) = parse_entry(&plain).expect("parses");
        assert!(parsed.qos.is_none());
        // A torn per-core array is corrupt, not silently zero-filled.
        let torn = line.replace("[5000,900,700,850,1400,12,2,1,1]", "[5000,900]");
        assert_ne!(torn, line, "replacement must hit");
        assert!(
            parse_entry(&torn).is_none(),
            "2-element core qos is corrupt"
        );
    }

    /// Checkpoint files written before the bounded prefetch queue existed
    /// carry 14-element cache arrays and 10-element telemetry counts;
    /// both must still parse, with the queue-drop counters reading zero
    /// (no queue, no drops — the value is exact, not a guess).
    #[test]
    fn pre_queue_lines_still_parse_with_zero_queue_drops() {
        let line = concat!(
            "{\"key\":\"legacy\",\"cores\":[[1,2,3,4,5,6]],",
            "\"l1d\":[1,2,3,4,5,6,7,8,9,10,11,12,13,14],",
            "\"llc\":[1,2,3,4,5,6,7,8,9,10,11,12,13,14],",
            "\"dram_transfers\":9,\"total_cycles\":10,",
            "\"debug\":[\"d\"],\"metrics\":[[]],",
            "\"telemetry\":{\"counts\":[1,2,3,4,5,6,7,8,9,10],",
            "\"by_source\":[],\"hot_pcs\":[]}}"
        );
        let (key, r) = parse_entry(line).expect("legacy line parses");
        assert_eq!(key, "legacy");
        assert_eq!(r.llc.pf_dropped_queue, 0);
        assert_eq!(r.llc.pf_useless, 14, "existing indices keep meaning");
        let t = r.telemetry.expect("telemetry present");
        assert_eq!(t.dropped_queue, 0);
        assert_eq!(t.orphans, 10, "existing indices keep meaning");
        // A wrong arity is still rejected outright.
        let torn = line.replace(",13,14]", ",13]");
        assert!(parse_entry(&torn).is_none(), "13-element cache is corrupt");
    }

    #[test]
    fn open_record_reopen_restores_entries() {
        let path = tmp_path("reopen");
        let cp = Checkpoint::open(&path).expect("create");
        assert!(cp.is_empty());
        cp.record("a", &sample_result(1)).expect("write");
        cp.record("b", &sample_result(2)).expect("write");
        drop(cp);
        let cp = Checkpoint::open(&path).expect("reopen");
        assert_eq!(cp.len(), 2);
        assert_eq!(cp.skipped_lines(), 0);
        assert_bit_equal(&cp.get("a").expect("a"), &sample_result(1));
        assert_bit_equal(&cp.get("b").expect("b"), &sample_result(2));
        assert!(cp.get("c").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_and_tampered_lines_are_skipped_not_fatal() {
        let path = tmp_path("torn");
        let cp = Checkpoint::open(&path).expect("create");
        cp.record("good", &sample_result(3)).expect("write");
        drop(cp);
        // Simulate a mid-write kill plus hand tampering: a torn half line,
        // a valid-JSON-wrong-shape line, and plain garbage.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        let torn = serialize_entry("torn", &sample_result(4));
        writeln!(f, "{}", &torn[..torn.len() / 2]).expect("torn write");
        writeln!(f, "{{\"key\":\"shapeless\"}}").expect("tamper write");
        writeln!(f, "not json at all").expect("garbage write");
        drop(f);
        let cp = Checkpoint::open(&path).expect("reopen survives corruption");
        assert_eq!(cp.len(), 1, "only the intact entry is loaded");
        assert_eq!(cp.skipped_lines(), 3);
        assert!(cp.get("torn").is_none());
        assert_bit_equal(&cp.get("good").expect("good"), &sample_result(3));
        // The file still accepts new entries after corruption.
        cp.record("after", &sample_result(5))
            .expect("append after skip");
        let cp = Checkpoint::open(&path).expect("third open");
        assert_eq!(cp.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn latest_entry_wins_on_duplicate_keys() {
        let path = tmp_path("dup");
        let cp = Checkpoint::open(&path).expect("create");
        cp.record("k", &sample_result(1)).expect("write");
        cp.record("k", &sample_result(9)).expect("write");
        assert_eq!(cp.len(), 1);
        drop(cp);
        let cp = Checkpoint::open(&path).expect("reopen");
        assert_bit_equal(&cp.get("k").expect("k"), &sample_result(9));
        let _ = std::fs::remove_file(&path);
    }
}
