//! Mix-config parser error paths: every malformed input yields a typed
//! [`MixError`] carrying the 1-based line number of the offending text —
//! no panics, no half-loaded grids — mirroring the trace-decoder test
//! style (typed errors, precise locations, torn inputs).

use bingo_bench::{MixConfig, MixError, PrefetcherKind};
use bingo_workloads::Workload;

/// Asserts the text fails to parse, returning the error for shape checks.
fn parse_err(text: &str) -> MixError {
    match MixConfig::parse_str(text) {
        Ok(mixes) => panic!("expected a parse error, got {} mix(es)", mixes.len()),
        Err(e) => e,
    }
}

#[test]
fn duplicate_core_id_names_the_second_assignment_line() {
    let text = "mix dup\n\
                core 0 workload=zeus prefetcher=bingo\n\
                core 0 workload=em3d prefetcher=none\n\
                end\n";
    match parse_err(text) {
        MixError::DuplicateCore { line: 3, core: 0 } => {}
        other => panic!("expected DuplicateCore at line 3, got {other:?}"),
    }
}

#[test]
fn unknown_workload_is_reported_with_its_name_and_line() {
    let text = "mix bad\ncore 0 workload=not-a-thing prefetcher=bingo\nend\n";
    match parse_err(text) {
        MixError::UnknownWorkload { line: 2, name } => assert_eq!(name, "not-a-thing"),
        other => panic!("expected UnknownWorkload at line 2, got {other:?}"),
    }
}

#[test]
fn unknown_prefetcher_is_reported_with_its_name_and_line() {
    let text = "mix bad\n\ncore 0 workload=zeus prefetcher=warp-drive\nend\n";
    match parse_err(text) {
        MixError::UnknownPrefetcher { line: 3, name } => assert_eq!(name, "warp-drive"),
        other => panic!("expected UnknownPrefetcher at line 3, got {other:?}"),
    }
}

#[test]
fn parameterized_prefetchers_are_not_config_addressable() {
    // The slug namespace covers only the fixed paper configurations;
    // parameterized kinds stay programmatic.
    assert_eq!(PrefetcherKind::from_slug("bingo-8k"), None);
    assert_eq!(PrefetcherKind::from_slug("nextline-4"), None);
    assert_eq!(
        PrefetcherKind::from_slug("Bingo"),
        None,
        "slugs are lowercase"
    );
}

#[test]
fn zero_core_mix_is_rejected_at_its_end_line() {
    let text = "mix empty\nend\n";
    match parse_err(text) {
        MixError::ZeroCores { line: 2, name } => assert_eq!(name, "empty"),
        other => panic!("expected ZeroCores at line 2, got {other:?}"),
    }
}

#[test]
fn torn_file_reports_the_unterminated_mix() {
    // A file truncated mid-block (e.g. a torn write of a committed
    // config) points at the `mix` line left open.
    let text = "mix whole\n\
                core 0 workload=zeus prefetcher=bingo\n\
                end\n\
                mix torn\n\
                core 0 workload=em3d prefetcher=none\n";
    match parse_err(text) {
        MixError::UnterminatedMix { line: 4, name } => assert_eq!(name, "torn"),
        other => panic!("expected UnterminatedMix at line 4, got {other:?}"),
    }
}

#[test]
fn non_contiguous_core_ids_report_the_first_gap() {
    let text = "mix gap\n\
                core 0 workload=zeus prefetcher=bingo\n\
                core 2 workload=em3d prefetcher=none\n\
                end\n";
    match parse_err(text) {
        MixError::MissingCore { line: 4, core: 1 } => {}
        other => panic!("expected MissingCore 1 at line 4, got {other:?}"),
    }
}

#[test]
fn directives_outside_a_mix_block_are_rejected() {
    match parse_err("core 0 workload=zeus prefetcher=bingo\n") {
        MixError::OutsideMix { line: 1, directive } => assert_eq!(directive, "core"),
        other => panic!("expected OutsideMix, got {other:?}"),
    }
    match parse_err("end\n") {
        MixError::OutsideMix { line: 1, directive } => assert_eq!(directive, "end"),
        other => panic!("expected OutsideMix, got {other:?}"),
    }
}

#[test]
fn unknown_directives_and_fields_are_rejected() {
    match parse_err("launch missiles\n") {
        MixError::UnknownDirective { line: 1, directive } => assert_eq!(directive, "launch"),
        other => panic!("expected UnknownDirective, got {other:?}"),
    }
    let text = "mix m\ncore 0 workload=zeus prefetcher=bingo turbo=yes\nend\n";
    match parse_err(text) {
        MixError::UnknownField { line: 2, field } => assert_eq!(field, "turbo"),
        other => panic!("expected UnknownField, got {other:?}"),
    }
}

#[test]
fn malformed_values_are_bad_values_not_panics() {
    for (text, expect_field) in [
        (
            "mix m\ncore x workload=zeus prefetcher=bingo\nend\n",
            "core id",
        ),
        (
            "mix m\ncore 0 workload=zeus prefetcher=bingo scale=0%\nend\n",
            "scale",
        ),
        (
            "mix m\ncore 0 workload=zeus prefetcher=bingo scale=150%\nend\n",
            "scale",
        ),
        (
            "mix m\ncore 0 workload=zeus prefetcher=bingo scale=lots\nend\n",
            "scale",
        ),
        (
            "mix m\ncore 0 workload=zeus prefetcher=bingo\nramp initial=4 increment=2 max=2\nend\n",
            "max",
        ),
        (
            "mix m\ncore 0 workload=zeus prefetcher=bingo\nramp initial=0 increment=2 max=4\nend\n",
            "ramp",
        ),
    ] {
        match MixConfig::parse_str(text) {
            Err(MixError::BadValue { line, field, .. }) => {
                assert_eq!(field, expect_field, "in {text:?}");
                assert!(
                    line >= 2,
                    "line numbers are 1-based and point past the header"
                );
            }
            other => panic!("expected BadValue({expect_field}) for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn missing_required_fields_are_named() {
    let text = "mix m\ncore 0 prefetcher=bingo\nend\n";
    match parse_err(text) {
        MixError::MissingField { line: 2, field } => assert_eq!(field, "workload"),
        other => panic!("expected MissingField(workload), got {other:?}"),
    }
    let text = "mix m\ncore 0 workload=zeus\nend\n";
    match parse_err(text) {
        MixError::MissingField { line: 2, field } => assert_eq!(field, "prefetcher"),
        other => panic!("expected MissingField(prefetcher), got {other:?}"),
    }
    let text = "mix m\ncore 0 workload=zeus prefetcher=bingo\nramp initial=2 max=4\nend\n";
    match parse_err(text) {
        MixError::MissingField { line: 3, field } => assert_eq!(field, "increment"),
        other => panic!("expected MissingField(increment), got {other:?}"),
    }
}

#[test]
fn duplicate_mix_names_are_rejected_across_blocks() {
    let text = "mix twin\ncore 0 workload=zeus prefetcher=bingo\nend\n\
                mix twin\ncore 0 workload=em3d prefetcher=none\nend\n";
    match parse_err(text) {
        MixError::DuplicateMixName { line: 4, name } => assert_eq!(name, "twin"),
        other => panic!("expected DuplicateMixName at line 4, got {other:?}"),
    }
}

#[test]
fn every_error_displays_its_line_number() {
    // The Display impl is what a failing binary prints; each message must
    // carry the location.
    for text in [
        "mix m\ncore 0 workload=zeus prefetcher=bingo\ncore 0 workload=em3d prefetcher=none\nend\n",
        "mix m\ncore 0 workload=nope prefetcher=bingo\nend\n",
        "mix m\nend\n",
        "mix m\ncore 0 workload=zeus prefetcher=bingo\n",
        "warp\n",
    ] {
        let msg = parse_err(text).to_string();
        assert!(msg.contains("line "), "no line number in {msg:?}");
    }
    // NoMixes has no location (the whole file is the location).
    assert_eq!(parse_err("").to_string(), "config contains no mixes");
}

#[test]
fn committed_configs_parse_and_stay_valid() {
    // The configs this repo ships must never rot: parse them from disk
    // exactly as fig_multicore and CI do.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let contention = MixConfig::parse_file(format!("{root}/configs/mixes/contention.mix"))
        .expect("configs/mixes/contention.mix parses");
    assert!(
        contention
            .iter()
            .any(|m| m.core_count() == 2 && m.ramp.is_some()),
        "a ramped 2-core mix is committed (acceptance criterion)"
    );
    assert!(
        contention
            .iter()
            .any(|m| m.core_count() == 4 && m.ramp.is_some()),
        "a ramped 4-core mix is committed (acceptance criterion)"
    );
    for m in &contention {
        for (slot, a) in m.cores.iter().enumerate() {
            // Round-trip the slugs the file used.
            assert_eq!(Workload::from_slug(a.workload.slug()), Some(a.workload));
            assert!(a.slot_spec(slot).starts_with(&format!("c{slot}=")));
        }
    }
    let equivalence = MixConfig::parse_file(format!("{root}/configs/mixes/equivalence.mix"))
        .expect("configs/mixes/equivalence.mix parses");
    assert_eq!(equivalence.len(), 1);
    assert_eq!(equivalence[0].core_count(), 1);
}
