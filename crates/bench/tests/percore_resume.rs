//! Checkpoint compatibility of the per-core throttle mode: `percore`
//! sweeps resume bit-for-bit from their own `/throttle=percore`-suffixed
//! namespace, and that namespace is disjoint from both the unthrottled
//! and the chip-wide-feedback generations sharing the same file — a
//! mixed-generation checkpoint serves all three without cross-talk.

use std::path::PathBuf;

use bingo_bench::{
    Checkpoint, MixCell, MixConfig, MixEvaluation, ParallelHarness, Pressure, RunScale,
};
use bingo_sim::ThrottleMode;

fn scale() -> RunScale {
    RunScale {
        instructions_per_core: 15_000,
        warmup_per_core: 5_000,
        seed: 21,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bingo-percore-resume-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn mix() -> MixConfig {
    MixConfig::parse_str(
        "mix pair\n\
         core 0 workload=streaming prefetcher=bingo\n\
         core 1 workload=stress-storm prefetcher=bingo\n\
         end\n",
    )
    .expect("valid mix")
    .remove(0)
}

fn cells() -> Vec<MixCell> {
    vec![
        MixCell {
            mix: mix(),
            cores: 2,
            pressure: Pressure::NONE,
        },
        MixCell {
            mix: mix(),
            cores: 2,
            pressure: Pressure::CONSTRAINED,
        },
    ]
}

fn harness(throttle: ThrottleMode, cp: Option<Checkpoint>) -> ParallelHarness {
    let mut h = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .with_throttle(throttle);
    if let Some(cp) = cp {
        h = h.with_checkpoint(cp);
    }
    h
}

/// NaN-proof bitwise comparison of two mix evaluations.
fn assert_bit_identical(fresh: &MixEvaluation, resumed: &MixEvaluation, what: &str) {
    assert_eq!(fresh.result, resumed.result, "{what}: result differs");
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&fresh.fairness.core_ipcs),
        bits(&resumed.fairness.core_ipcs),
        "{what}: core IPCs differ"
    );
}

#[test]
fn percore_mix_keys_resume_bit_for_bit() {
    let path = tmp_path("percore-resume");

    // The reference: an uncheckpointed percore sweep. Its results carry
    // QoS reports, so this also pins that the optional `qos` field
    // round-trips through the checkpoint in a real sweep (not just the
    // serializer unit tests).
    let fresh = harness(ThrottleMode::Percore, None)
        .try_evaluate_mix_grid(&cells())
        .into_complete();

    {
        let mut h = harness(
            ThrottleMode::Percore,
            Some(Checkpoint::open(&path).expect("create checkpoint")),
        );
        let report = h.try_evaluate_mix_grid(&cells());
        assert!(report.is_clean(), "{}", report.failure_report());
        assert_eq!(report.checkpoint_hits, 0, "first run simulates everything");
    }

    let cp = Checkpoint::open(&path).expect("reopen checkpoint");
    assert_eq!(cp.len(), 6, "2 mix cells + 4 solo runs are durable");
    let mut h = harness(ThrottleMode::Percore, Some(cp));
    let report = h.try_evaluate_mix_grid(&cells());
    assert!(report.is_clean(), "{}", report.failure_report());
    assert_eq!(
        report.checkpoint_hits, 6,
        "everything replays, nothing re-simulates"
    );
    let resumed = report.into_complete();
    assert_eq!(fresh.len(), resumed.len());
    for (f, r) in fresh.iter().zip(&resumed) {
        let what = format!("{}@{} / {}", f.mix_name, f.cores, f.pressure.name);
        assert_bit_identical(f, r, &what);
        let qos = r
            .result
            .qos
            .as_ref()
            .unwrap_or_else(|| panic!("{what}: replayed percore run lost its QoS report"));
        assert_eq!(qos.cores.len(), 2, "{what}: one QoS row per core");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn percore_entries_share_a_file_with_older_throttle_generations() {
    // One checkpoint file, three generations: an unthrottled sweep (the
    // pre-throttle key format), a chip-wide feedback sweep (PR 8's
    // suffix), then a percore sweep. Each must populate its own
    // namespace — zero hits on first contact — and replay fully from it
    // afterwards, leaving the others untouched.
    let path = tmp_path("mixed-throttle-generations");
    let generations = [
        ThrottleMode::Off,
        ThrottleMode::Feedback,
        ThrottleMode::Percore,
    ];

    let mut expected_len = 0;
    for &mode in &generations {
        let mut h = harness(
            mode,
            Some(Checkpoint::open(&path).expect("open checkpoint")),
        );
        let report = h.try_evaluate_mix_grid(&cells());
        assert!(report.is_clean(), "{}", report.failure_report());
        assert_eq!(
            report.checkpoint_hits, 0,
            "{mode} sweep must not replay another generation's entries"
        );
        expected_len += 6;
        let durable = Checkpoint::open(&path).expect("reopen").len();
        assert_eq!(
            durable, expected_len,
            "{mode} sweep appended its own 6 entries without clobbering"
        );
    }

    // The grown file now serves every generation entirely from replay.
    for &mode in &generations {
        let mut h = harness(
            mode,
            Some(Checkpoint::open(&path).expect("reopen grown file")),
        );
        let report = h.try_evaluate_mix_grid(&cells());
        assert!(report.is_clean(), "{}", report.failure_report());
        assert_eq!(report.checkpoint_hits, 6, "{mode} cells replay");
    }
    let _ = std::fs::remove_file(&path);
}
