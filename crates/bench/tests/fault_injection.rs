//! Acceptance properties of the fault-injection layer: Bingo whose
//! metadata is corrupted by a seeded `FaultInjector` (footprint bit flips,
//! history-entry drops, dropped prefetches at 1–10 % rates) must complete
//! a full simulation without panicking or deadlocking, stay deterministic
//! for a fixed fault seed, and only *lose coverage*, degrading toward
//! no-prefetch behavior — never corrupting the simulation itself.

use bingo_bench::{run_one, ParallelHarness, PrefetcherKind, RunScale};
use bingo_workloads::Workload;

fn scale(seed: u64) -> RunScale {
    RunScale {
        instructions_per_core: 20_000,
        warmup_per_core: 5_000,
        seed,
    }
}

const RATES: [f64; 3] = [0.01, 0.05, 0.10];

#[test]
fn corrupted_bingo_completes_and_degrades_gracefully() {
    for (workload, seed) in [(Workload::Em3d, 31), (Workload::Streaming, 32)] {
        let mut h = ParallelHarness::with_jobs(scale(seed), 2).quiet();
        let fault_free = h.evaluate(workload, PrefetcherKind::Bingo);
        for rate in RATES {
            // Completing `evaluate` at all is the no-panic/no-deadlock
            // half of the property (a livelock would hit the simulator's
            // cycle limit and panic).
            let faulty = h.evaluate(
                workload,
                PrefetcherKind::BingoFaulty {
                    fault_seed: 0xFA17,
                    rate,
                },
            );
            let cov = faulty.coverage.coverage;
            // Coverage stays between no-prefetch (0, the metric's floor)
            // and fault-free Bingo, with a small tolerance for lucky
            // spurious prefetches at this scale.
            assert!(
                cov.is_finite() && cov >= 0.0,
                "{} rate {rate}: coverage {cov} must be a non-negative number",
                workload.name()
            );
            assert!(
                cov <= fault_free.coverage.coverage + 0.05,
                "{} rate {rate}: corrupted coverage {cov:.3} exceeds fault-free {:.3}",
                workload.name(),
                fault_free.coverage.coverage
            );
            // The baseline the cell is judged against is untouched by the
            // injector (corruption is confined to the prefetcher).
            assert_eq!(faulty.baseline, fault_free.baseline);
        }
    }
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let kind = PrefetcherKind::BingoFaulty {
        fault_seed: 0xDE7E_2717,
        rate: 0.05,
    };
    let a = run_one(Workload::Em3d, kind, scale(33));
    let b = run_one(Workload::Em3d, kind, scale(33));
    assert_eq!(
        a, b,
        "same workload seed + fault seed must reproduce exactly"
    );

    // A different fault seed corrupts differently (the injector stream is
    // real, not a no-op).
    let c = run_one(
        Workload::Em3d,
        PrefetcherKind::BingoFaulty {
            fault_seed: 0xDE7E_2718,
            rate: 0.05,
        },
        scale(33),
    );
    assert_ne!(a, c, "distinct fault seeds should perturb the run");
}

#[test]
fn total_prefetch_loss_collapses_to_no_prefetch_behavior() {
    // Rate 1.0 drops every prefetch candidate: the memory system sees
    // exactly the no-prefetcher access stream, so misses match the
    // baseline and coverage is exactly zero — the documented degradation
    // endpoint.
    let mut h = ParallelHarness::with_jobs(scale(34), 2).quiet();
    let eval = h.evaluate(
        Workload::Streaming,
        PrefetcherKind::BingoFaulty {
            fault_seed: 1,
            rate: 1.0,
        },
    );
    assert_eq!(eval.result.llc.pf_issued, 0, "every prefetch was dropped");
    assert_eq!(
        eval.coverage.misses_with_prefetch, eval.coverage.baseline_misses,
        "with all prefetches dropped the miss stream is the baseline's"
    );
    assert_eq!(eval.coverage.coverage.to_bits(), 0f64.to_bits());
}
