//! Acceptance test of checkpoint/resume: a sweep interrupted mid-run and
//! resumed from its `BINGO_CHECKPOINT` file produces bit-for-bit the same
//! [`bingo_bench::Evaluation`]s as an uninterrupted sweep — including
//! after the file picks up a torn final line from the simulated kill.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use bingo_bench::{Checkpoint, Evaluation, ParallelHarness, PrefetcherKind, RunScale};
use bingo_sim::ThrottleMode;
use bingo_workloads::Workload;

fn scale() -> RunScale {
    RunScale {
        instructions_per_core: 15_000,
        warmup_per_core: 5_000,
        seed: 21,
    }
}

fn grid() -> Vec<(Workload, PrefetcherKind)> {
    vec![
        (Workload::Em3d, PrefetcherKind::NextLine(1)),
        (Workload::Em3d, PrefetcherKind::Stride),
        (Workload::Streaming, PrefetcherKind::NextLine(1)),
        (Workload::Streaming, PrefetcherKind::Stride),
    ]
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bingo-resume-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// NaN-proof bitwise comparison of two evaluations.
fn assert_bit_identical(fresh: &Evaluation, resumed: &Evaluation, what: &str) {
    assert_eq!(fresh.result, resumed.result, "{what}: result differs");
    assert_eq!(fresh.baseline, resumed.baseline, "{what}: baseline differs");
    assert_eq!(
        fresh.speedup.to_bits(),
        resumed.speedup.to_bits(),
        "{what}: speedup differs"
    );
    for (a, b, field) in [
        (
            fresh.coverage.coverage,
            resumed.coverage.coverage,
            "coverage",
        ),
        (
            fresh.coverage.overprediction,
            resumed.coverage.overprediction,
            "overprediction",
        ),
        (
            fresh.coverage.accuracy,
            resumed.coverage.accuracy,
            "accuracy",
        ),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: {field} differs");
    }
    assert_eq!(
        fresh.coverage.baseline_misses, resumed.coverage.baseline_misses,
        "{what}: baseline misses differ"
    );
    assert_eq!(
        fresh.coverage.misses_with_prefetch, resumed.coverage.misses_with_prefetch,
        "{what}: prefetch misses differ"
    );
}

#[test]
fn resume_from_checkpoint_is_bit_for_bit_identical() {
    let cells = grid();
    let path = tmp_path("resume");

    // The reference: one uninterrupted sweep, no checkpoint involved.
    let fresh = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .evaluate_grid(&cells);

    // The "killed" sweep: only the first half of the grid completes
    // before the process dies.
    {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("create checkpoint"));
        let partial = h.evaluate_grid(&cells[..2]);
        assert_eq!(partial.len(), 2);
    }

    // The kill also tears the last line mid-write.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open for tearing");
        write!(f, "{{\"key\":\"torn-mid-wri").expect("torn tail");
    }

    // Resume: the finished cells (and the Em3d baseline) replay from the
    // file; only the missing half simulates.
    let resumed_checkpoint = Checkpoint::open(&path).expect("reopen checkpoint");
    assert_eq!(
        resumed_checkpoint.skipped_lines(),
        1,
        "exactly the torn line is skipped"
    );
    assert_eq!(
        resumed_checkpoint.len(),
        3,
        "two cells plus the Em3d baseline were durable"
    );
    let mut h = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .with_checkpoint(resumed_checkpoint);
    let report = h.try_evaluate_grid(&cells);
    assert!(report.is_clean(), "{}", report.failure_report());
    assert_eq!(
        report.checkpoint_hits, 3,
        "the finished cells and baseline must replay, not re-simulate"
    );
    let resumed = report.into_complete();

    assert_eq!(fresh.len(), resumed.len());
    for (f, r) in fresh.iter().zip(&resumed) {
        assert_eq!(f.workload, r.workload);
        assert_eq!(f.kind, r.kind);
        assert_bit_identical(f, r, &format!("{} / {}", f.workload.name(), f.kind.name()));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn completed_checkpoint_resumes_without_any_simulation() {
    let cells = grid();
    let path = tmp_path("full");
    let fresh = {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("create"));
        h.evaluate_grid(&cells)
    };
    // Second harness, same file: every cell and baseline is a hit, and a
    // tight deadline proves nothing is simulated (a real simulation at
    // Duration::ZERO would time out).
    let mut h = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .with_cell_timeout(Duration::ZERO)
        .with_checkpoint(Checkpoint::open(&path).expect("reopen"));
    let report = h.try_evaluate_grid(&cells);
    assert!(report.is_clean(), "{}", report.failure_report());
    assert_eq!(
        report.checkpoint_hits,
        cells.len() + 2,
        "4 cells + 2 baselines"
    );
    let resumed = report.into_complete();
    for (f, r) in fresh.iter().zip(&resumed) {
        assert_bit_identical(f, r, &format!("{} / {}", f.workload.name(), f.kind.name()));
    }
    let _ = std::fs::remove_file(&path);
}

/// Checkpoint/resume with the feedback throttle enabled: the controller's
/// level walk is part of the simulated machine, so a resumed throttled
/// sweep must be bit-for-bit identical to an uninterrupted one — and its
/// checkpoint keys are namespaced by mode, so an unthrottled harness can
/// never replay throttled results (or vice versa).
#[test]
fn throttled_sweep_resumes_bit_for_bit_and_keys_stay_disjoint() {
    let scale = RunScale {
        instructions_per_core: 15_000,
        warmup_per_core: 5_000,
        seed: 33,
    };
    let cells = vec![
        (Workload::Em3d, PrefetcherKind::Bingo),
        (Workload::Streaming, PrefetcherKind::Bingo),
    ];
    let path = tmp_path("throttle");

    // Reference: uninterrupted feedback-throttled sweep, no checkpoint.
    let fresh = ParallelHarness::with_jobs(scale, 2)
        .quiet()
        .with_throttle(ThrottleMode::Feedback)
        .evaluate_grid(&cells);

    // Interrupted: only the first cell (and its baseline) completes.
    {
        let mut h = ParallelHarness::with_jobs(scale, 2)
            .quiet()
            .with_throttle(ThrottleMode::Feedback)
            .with_checkpoint(Checkpoint::open(&path).expect("create checkpoint"));
        let partial = h.evaluate_grid(&cells[..1]);
        assert_eq!(partial.len(), 1);
    }

    // Resume under the same mode: the finished cell and baseline replay.
    let mut h = ParallelHarness::with_jobs(scale, 2)
        .quiet()
        .with_throttle(ThrottleMode::Feedback)
        .with_checkpoint(Checkpoint::open(&path).expect("reopen checkpoint"));
    let report = h.try_evaluate_grid(&cells);
    assert!(report.is_clean(), "{}", report.failure_report());
    assert_eq!(
        report.checkpoint_hits, 2,
        "the finished cell and the Em3d baseline must replay"
    );
    let resumed = report.into_complete();
    assert_eq!(fresh.len(), resumed.len());
    for (f, r) in fresh.iter().zip(&resumed) {
        assert_bit_identical(f, r, &format!("{} / {}", f.workload.name(), f.kind.name()));
    }

    // Mode mismatch: an *unthrottled* harness on the same file finds no
    // usable entries — every key is namespaced by throttle mode.
    let mut h = ParallelHarness::with_jobs(scale, 2)
        .quiet()
        .with_checkpoint(Checkpoint::open(&path).expect("reopen checkpoint"));
    let report = h.try_evaluate_grid(&cells);
    assert!(report.is_clean(), "{}", report.failure_report());
    assert_eq!(
        report.checkpoint_hits, 0,
        "throttled checkpoint entries must be invisible to an unthrottled sweep"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_cells_are_not_checkpointed_and_retry_on_resume() {
    let path = tmp_path("failed");
    let cells = [
        (Workload::Streaming, PrefetcherKind::NextLine(1)),
        (
            Workload::Streaming,
            PrefetcherKind::Faulty { panic_after: 0 },
        ),
    ];
    {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("create"));
        let report = h.try_evaluate_grid(&cells);
        assert_eq!(report.failures.len(), 1);
    }
    let cp = Checkpoint::open(&path).expect("reopen");
    assert_eq!(
        cp.len(),
        2,
        "baseline + healthy cell only; no failure entry"
    );
    assert!(
        cp.get(&bingo_bench::cell_key(
            scale(),
            Workload::Streaming,
            PrefetcherKind::Faulty { panic_after: 0 }
        ))
        .is_none(),
        "a panicked cell must be retried on resume, not replayed"
    );
    let _ = std::fs::remove_file(&path);
}
