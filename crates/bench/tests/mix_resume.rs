//! Checkpoint compatibility of the mix grid: old single-core checkpoint
//! files keep working, `mix:`/`mix-solo:`-namespaced entries resume
//! bit-for-bit, and a checkpoint holding a mixture of old-style and
//! mix-style entries (with failures among them) retries only what is
//! actually missing.

use std::path::PathBuf;

use bingo_bench::{
    Checkpoint, MixAssignment, MixCell, MixConfig, MixEvaluation, ParallelHarness, PrefetcherKind,
    Pressure, RunScale,
};
use bingo_workloads::Workload;

fn scale() -> RunScale {
    RunScale {
        instructions_per_core: 15_000,
        warmup_per_core: 5_000,
        seed: 21,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("bingo-mix-resume-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{name}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn mix() -> MixConfig {
    MixConfig::parse_str(
        "mix pair\n\
         core 0 workload=streaming prefetcher=stride\n\
         core 1 workload=em3d prefetcher=none\n\
         end\n",
    )
    .expect("valid mix")
    .remove(0)
}

fn mix_cells() -> Vec<MixCell> {
    vec![
        MixCell {
            mix: mix(),
            cores: 2,
            pressure: Pressure::NONE,
        },
        MixCell {
            mix: mix(),
            cores: 2,
            pressure: Pressure::SCARCE,
        },
    ]
}

fn classic_cells() -> Vec<(Workload, PrefetcherKind)> {
    vec![
        (Workload::Em3d, PrefetcherKind::Stride),
        (Workload::Streaming, PrefetcherKind::NextLine(1)),
    ]
}

/// NaN-proof bitwise comparison of two mix evaluations.
fn assert_bit_identical(fresh: &MixEvaluation, resumed: &MixEvaluation, what: &str) {
    assert_eq!(fresh.result, resumed.result, "{what}: result differs");
    assert_eq!(
        fresh.fairness.aggregate_ipc.to_bits(),
        resumed.fairness.aggregate_ipc.to_bits(),
        "{what}: aggregate IPC differs"
    );
    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&fresh.fairness.core_ipcs),
        bits(&resumed.fairness.core_ipcs),
        "{what}: core IPCs differ"
    );
    assert_eq!(
        bits(&fresh.fairness.slowdowns),
        bits(&resumed.fairness.slowdowns),
        "{what}: slowdowns differ"
    );
}

#[test]
fn mix_keys_resume_bit_for_bit() {
    let cells = mix_cells();
    let path = tmp_path("mix-resume");

    // The reference: an uncheckpointed sweep.
    let fresh = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .try_evaluate_mix_grid(&cells)
        .into_complete();

    // A checkpointed sweep populates the file...
    {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("create checkpoint"));
        let report = h.try_evaluate_mix_grid(&cells);
        assert!(report.is_clean(), "{}", report.failure_report());
        assert_eq!(report.checkpoint_hits, 0, "first run simulates everything");
    }

    // ...and a brand-new harness replays every cell and every solo from
    // it: 2 mix cells + 2 slots × 2 pressure levels = 6 entries.
    let cp = Checkpoint::open(&path).expect("reopen checkpoint");
    assert_eq!(cp.len(), 6, "2 mix cells + 4 solo runs are durable");
    let mut h = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .with_checkpoint(cp);
    let report = h.try_evaluate_mix_grid(&cells);
    assert!(report.is_clean(), "{}", report.failure_report());
    assert_eq!(
        report.checkpoint_hits, 6,
        "everything replays, nothing re-simulates"
    );
    let resumed = report.into_complete();
    assert_eq!(fresh.len(), resumed.len());
    for (f, r) in fresh.iter().zip(&resumed) {
        let what = format!("{}@{} / {}", f.mix_name, f.cores, f.pressure.name);
        assert_bit_identical(f, r, &what);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn old_single_core_checkpoints_still_parse_and_share_the_file() {
    // A checkpoint written by the classic (pre-mix) grid is still valid:
    // its entries replay for classic cells, and mix entries append to the
    // same file without disturbing them.
    let path = tmp_path("mixed-generations");
    let classic = classic_cells();
    {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("create checkpoint"));
        h.evaluate_grid(&classic);
    }
    let classic_entries = Checkpoint::open(&path).expect("reopen").len();
    assert_eq!(
        classic_entries, 4,
        "2 classic cells + 2 baselines are durable"
    );

    // Run the mix grid against the same file: classic entries are not
    // consulted (disjoint key namespaces), mix entries append.
    {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("reopen for mixes"));
        let report = h.try_evaluate_mix_grid(&mix_cells());
        assert!(report.is_clean(), "{}", report.failure_report());
        assert_eq!(report.checkpoint_hits, 0, "no mix entry predates this run");
    }

    // The grown file now serves both generations entirely from replay.
    let cp = Checkpoint::open(&path).expect("reopen grown file");
    assert_eq!(
        cp.len(),
        classic_entries + 6,
        "old entries survived the append"
    );
    let mut h = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .with_checkpoint(cp);
    let classic_report = h.try_evaluate_grid(&classic);
    assert!(classic_report.is_clean());
    assert_eq!(classic_report.checkpoint_hits, 4, "classic cells replay");
    let mix_report = h.try_evaluate_mix_grid(&mix_cells());
    assert!(mix_report.is_clean());
    assert_eq!(mix_report.checkpoint_hits, 6, "mix cells replay");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mixed_old_new_checkpoint_retries_only_failed_cells() {
    // A grid containing a cell that panics: the healthy cells and solos
    // are made durable; the resume replays them and re-attempts only the
    // broken cell.
    let path = tmp_path("retry-failed");
    let broken = MixConfig {
        name: "broken".to_string(),
        cores: vec![MixAssignment {
            workload: Workload::Em3d,
            prefetcher: PrefetcherKind::Faulty { panic_after: 100 },
            scale_percent: 100,
        }],
        ramp: None,
    };
    let mut cells = mix_cells();
    cells.push(MixCell {
        mix: broken,
        cores: 1,
        pressure: Pressure::NONE,
    });

    let durable = {
        let mut h = ParallelHarness::with_jobs(scale(), 2)
            .quiet()
            .with_checkpoint(Checkpoint::open(&path).expect("create checkpoint"));
        let report = h.try_evaluate_mix_grid(&cells);
        assert!(!report.is_clean(), "the faulty cell must fail");
        assert!(report.evaluations[0].is_some() && report.evaluations[1].is_some());
        assert!(report.evaluations[2].is_none());
        Checkpoint::open(&path).expect("reopen").len()
    };
    assert_eq!(
        durable, 6,
        "every healthy mix cell and solo is durable; the failed cell is not"
    );

    // Resume over the same grid: the 6 healthy entries replay; only the
    // broken cell's solo re-simulates (and fails again, listed as data).
    let mut h = ParallelHarness::with_jobs(scale(), 2)
        .quiet()
        .with_checkpoint(Checkpoint::open(&path).expect("reopen for retry"));
    let report = h.try_evaluate_mix_grid(&cells);
    assert_eq!(
        report.checkpoint_hits, 6,
        "healthy cells replay, not re-run"
    );
    assert!(!report.is_clean(), "the retried cell still fails");
    assert!(report.evaluations[0].is_some() && report.evaluations[1].is_some());
    assert!(report.evaluations[2].is_none());
    assert!(
        report.failures.iter().any(|f| f.solo.is_some()),
        "the re-attempted failure is the broken solo"
    );
    let _ = std::fs::remove_file(&path);
}
