//! Dependency-free deterministic random number generation.
//!
//! The build environment is hermetic (no crates.io access), so this crate
//! replaces the small slice of the `rand` API the workspace actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and [`Rng`] with
//! `gen_bool` / `gen_range` over half-open and inclusive integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand`'s `SmallRng` uses on 64-bit targets — so streams
//! are deterministic, fast, and of high statistical quality. Streams are
//! **not** bit-identical to `rand 0.8`'s (the range-reduction differs), so
//! workload traces regenerated under this crate differ in the concrete
//! addresses they emit while keeping identical statistical structure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods available on every generator.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Samples uniformly from `range` (`start..end` or `start..=end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Marker for integer types [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy {}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut impl Rng) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's widening-multiply method with
/// rejection, so every value is exactly equally likely. `span == 0` is read
/// as 2^64 (the full u64 range).
fn uniform_u64(rng: &mut impl Rng, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                // `end - start` can be u64::MAX; wrapping to 0 selects the
                // full-range path in `uniform_u64`.
                let span = ((end - start) as u64).wrapping_add(1);
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}

/// A small, fast, deterministic generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the 64-bit seed into the 256-bit state; it
        // cannot produce the (invalid) all-zero state for any seed in
        // practice, but guard anyway since the cost is one branch at init.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from distinct seeds must differ");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: u32 = rng.gen_range(100..101);
            assert_eq!(z, 100);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket should be hit");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(11);
        // Must not panic or hang; spans the wrapping_add(1) == 0 path.
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(13);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "p=0.25 over 10k draws should land near 2500, got {hits}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(5..5);
    }
}
