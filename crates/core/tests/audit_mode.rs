//! Verifies the `audit` feature's two contracted behaviors from a
//! *dependent* crate (the macro's `cfg` must resolve in the expanding
//! crate, not in `bingo-sim`): audit assertions vanish from normal builds
//! and fire in audit builds.

/// In a normal build the macro expands to nothing, so a false condition is
/// never evaluated; under `--features audit` it must panic with the
/// invariant's message.
#[test]
#[cfg_attr(
    feature = "audit",
    should_panic(expected = "deliberately violated invariant")
)]
fn audit_assert_fires_exactly_in_audit_builds() {
    bingo_sim::audit_assert!(1 == 2, "deliberately violated invariant: {}", "1 != 2");
}

/// A true condition is silent in both modes.
#[test]
fn audit_assert_is_silent_on_held_invariants() {
    bingo_sim::audit_assert!(1 + 1 == 2, "arithmetic holds");
}

/// The audited hot paths still work end-to-end under the feature: drive a
/// Bingo instance (history inserts, accumulation observes) far enough to
/// cross every audit assertion at least once.
#[test]
fn audited_invariants_hold_on_a_real_bingo_run() {
    use bingo_core_driver::drive;
    drive();
}

/// Minimal driver shared by the audit smoke test.
mod bingo_core_driver {
    use bingo::{Bingo, BingoConfig};
    use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, Prefetcher, RegionGeometry};

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    pub fn drive() {
        let mut b = Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            ..BingoConfig::paper()
        });
        let mut out = Vec::new();
        for region in 0..200u64 {
            for off in [0u64, 3, 7, 9] {
                out.clear();
                b.on_access(&info(0x400 + region % 7, region * 32 + off), &mut out);
            }
            b.on_eviction(BlockAddr::new(region * 32));
        }
        assert!(b.stats.lookups > 0);
    }
}
