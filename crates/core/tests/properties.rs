//! Property-style tests of Bingo's data-structure invariants.
//!
//! Each test draws many random cases from a seeded [`SmallRng`] so the
//! sampled inputs are deterministic across runs (the hermetic build has no
//! proptest, so shrinkable generation is traded for fixed seeds; failures
//! print the offending case instead).

use bingo_rng::{Rng, SeedableRng, SmallRng};

use bingo::{AccumulationTable, EventKind, Footprint, UnifiedHistoryTable};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, RegionGeometry};

fn fp(bits: u32) -> Footprint {
    Footprint::from_bits(bits as u64, 32)
}

fn info(pc: u64, block: u64) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write: false,
        hit: false,
        cycle: 0,
    }
}

fn random_patterns(rng: &mut SmallRng) -> Vec<u32> {
    let n = rng.gen_range(1..16usize);
    (0..n).map(|_| rng.next_u64() as u32).collect()
}

/// Votes are monotone in the threshold: a stricter threshold never adds
/// blocks.
#[test]
fn vote_monotone_in_threshold() {
    let mut rng = SmallRng::seed_from_u64(0xB1A5_0001);
    for _ in 0..256 {
        let patterns = random_patterns(&mut rng);
        let fps: Vec<Footprint> = patterns.iter().map(|&b| fp(b)).collect();
        let t1 = 0.05 + 0.95 * (rng.gen_range(0..1000u32) as f64 / 1000.0);
        let t2 = 0.05 + 0.95 * (rng.gen_range(0..1000u32) as f64 / 1000.0);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let loose = Footprint::vote(&fps, lo);
        let strict = Footprint::vote(&fps, hi);
        assert_eq!(
            strict.intersect(loose),
            strict,
            "strict ⊆ loose violated for {patterns:?} at ({lo}, {hi})"
        );
    }
}

/// A unanimous vote equals the intersection; a 1-of-n vote equals the union
/// (for n <= 16 so ceil(1/16) = 1).
#[test]
fn vote_extremes() {
    let mut rng = SmallRng::seed_from_u64(0xB1A5_0002);
    for _ in 0..256 {
        let patterns = random_patterns(&mut rng);
        let fps: Vec<Footprint> = patterns.iter().map(|&b| fp(b)).collect();
        let inter = fps.iter().fold(fp(u32::MAX), |a, b| a.intersect(*b));
        let union = fps.iter().fold(fp(0), |a, b| a.union(*b));
        assert_eq!(Footprint::vote(&fps, 1.0), inter, "for {patterns:?}");
        assert_eq!(Footprint::vote(&fps, 1.0 / 16.0), union, "for {patterns:?}");
    }
}

/// iter() yields exactly the set bits, ascending.
#[test]
fn footprint_iter_matches_bits() {
    let mut rng = SmallRng::seed_from_u64(0xB1A5_0003);
    for _ in 0..256 {
        let bits = rng.next_u64() as u32;
        let f = fp(bits);
        let offsets: Vec<u32> = f.iter().collect();
        assert_eq!(offsets.len() as u32, f.count());
        let mut reconstructed = 0u32;
        let mut last = None;
        for o in offsets {
            assert!(o < 32);
            if let Some(prev) = last {
                assert!(o > prev, "iter not ascending for {bits:#x}");
            }
            last = Some(o);
            reconstructed |= 1 << o;
        }
        assert_eq!(reconstructed, bits);
    }
}

/// Whatever is inserted into the unified table is found by the long lookup
/// and appears among the short matches.
#[test]
fn unified_table_insert_then_lookup() {
    let mut rng = SmallRng::seed_from_u64(0xB1A5_0004);
    for _ in 0..64 {
        let mut t = UnifiedHistoryTable::new(1024, 16, 32);
        let mut matches = Vec::new();
        let n = rng.gen_range(1..100usize);
        for _ in 0..n {
            let long = rng.next_u64();
            let short = rng.gen_range(0..64u64);
            let bits = rng.next_u64() as u32;
            t.insert(long, short, fp(bits));
            assert_eq!(t.lookup_long(long, short), Some(fp(bits)));
            t.lookup_short(short, &mut matches);
            assert!(
                matches.contains(&fp(bits)),
                "short lookup must see fresh insert of {bits:#x}"
            );
        }
        assert!(t.valid_entries() <= 1024);
    }
}

/// The event keys are pure functions of (pc, block, offset).
#[test]
fn event_keys_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xB1A5_0005);
    for _ in 0..256 {
        let pc = rng.next_u64();
        let block = rng.next_u64();
        let offset = rng.gen_range(0..32u64);
        for kind in EventKind::LONGEST_FIRST {
            assert_eq!(
                kind.key_parts(pc, block, offset),
                kind.key_parts(pc, block, offset)
            );
        }
    }
}

/// The accumulation table's live footprints always contain their trigger
/// offset and its occupancy never exceeds its capacity.
#[test]
fn accumulation_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xB1A5_0006);
    for _ in 0..64 {
        let mut acc = AccumulationTable::new(16, 32);
        let mut regions = Vec::new();
        let n = rng.gen_range(1..300usize);
        for _ in 0..n {
            let pc = rng.gen_range(0..8u64);
            let block = rng.gen_range(0..512u64);
            let i = info(0x400 + pc * 4, block);
            acc.observe(&i);
            regions.push(i.region);
            assert!(acc.len() <= 16);
        }
        for r in regions {
            if let Some(res) = acc.end_residency(r) {
                assert!(
                    res.footprint.contains(res.trigger_offset),
                    "footprint must contain the trigger"
                );
                assert_eq!(res.region, r);
            }
        }
        assert!(acc.is_empty() || acc.len() <= 16);
    }
}
