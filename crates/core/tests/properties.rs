//! Property-based tests of Bingo's data-structure invariants.

use proptest::prelude::*;

use bingo::{AccumulationTable, EventKind, Footprint, UnifiedHistoryTable};
use bingo_sim::{AccessInfo, BlockAddr, CoreId, Pc, RegionGeometry};

fn fp(bits: u32) -> Footprint {
    Footprint::from_bits(bits as u64, 32)
}

fn info(pc: u64, block: u64) -> AccessInfo {
    let g = RegionGeometry::default();
    let b = BlockAddr::new(block);
    AccessInfo {
        core: CoreId(0),
        pc: Pc::new(pc),
        addr: b.base_addr(),
        block: b,
        region: g.region_of(b),
        offset: g.offset_of(b),
        is_write: false,
        hit: false,
        cycle: 0,
    }
}

proptest! {
    /// Votes are monotone in the threshold: a stricter threshold never
    /// adds blocks.
    #[test]
    fn vote_monotone_in_threshold(
        patterns in proptest::collection::vec(any::<u32>(), 1..16),
        t1 in 0.05f64..1.0,
        t2 in 0.05f64..1.0,
    ) {
        let fps: Vec<Footprint> = patterns.iter().map(|&b| fp(b)).collect();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let loose = Footprint::vote(&fps, lo);
        let strict = Footprint::vote(&fps, hi);
        prop_assert_eq!(strict.intersect(loose), strict, "strict ⊆ loose violated");
    }

    /// A unanimous vote equals the intersection; a 1-of-n vote equals the
    /// union (for n <= 16 so ceil(1/16) = 1).
    #[test]
    fn vote_extremes(patterns in proptest::collection::vec(any::<u32>(), 1..16)) {
        let fps: Vec<Footprint> = patterns.iter().map(|&b| fp(b)).collect();
        let inter = fps.iter().fold(fp(u32::MAX), |a, b| a.intersect(*b));
        let union = fps.iter().fold(fp(0), |a, b| a.union(*b));
        prop_assert_eq!(Footprint::vote(&fps, 1.0), inter);
        prop_assert_eq!(Footprint::vote(&fps, 1.0 / 16.0), union);
    }

    /// iter() yields exactly the set bits, ascending.
    #[test]
    fn footprint_iter_matches_bits(bits in any::<u32>()) {
        let f = fp(bits);
        let offsets: Vec<u32> = f.iter().collect();
        prop_assert_eq!(offsets.len() as u32, f.count());
        let mut reconstructed = 0u32;
        let mut last = None;
        for o in offsets {
            prop_assert!(o < 32);
            if let Some(prev) = last {
                prop_assert!(o > prev, "iter not ascending");
            }
            last = Some(o);
            reconstructed |= 1 << o;
        }
        prop_assert_eq!(reconstructed, bits);
    }

    /// Whatever is inserted into the unified table is found by the long
    /// lookup and appears among the short matches.
    #[test]
    fn unified_table_insert_then_lookup(
        entries in proptest::collection::vec((any::<u64>(), 0u64..64, any::<u32>()), 1..100),
    ) {
        let mut t = UnifiedHistoryTable::new(1024, 16, 32);
        let mut matches = Vec::new();
        for (long, short, bits) in entries {
            t.insert(long, short, fp(bits));
            prop_assert_eq!(t.lookup_long(long, short), Some(fp(bits)));
            t.lookup_short(short, &mut matches);
            prop_assert!(matches.contains(&fp(bits)), "short lookup must see fresh insert");
        }
        prop_assert!(t.valid_entries() <= 1024);
    }

    /// The event keys are pure functions of (pc, block, offset).
    #[test]
    fn event_keys_deterministic(pc in any::<u64>(), block in any::<u64>(), offset in 0u64..32) {
        for kind in EventKind::LONGEST_FIRST {
            prop_assert_eq!(
                kind.key_parts(pc, block, offset),
                kind.key_parts(pc, block, offset)
            );
        }
    }

    /// The accumulation table's live footprints always contain their
    /// trigger offset and its occupancy never exceeds its capacity.
    #[test]
    fn accumulation_invariants(accesses in proptest::collection::vec((0u64..8, 0u64..512), 1..300)) {
        let mut acc = AccumulationTable::new(16, 32);
        let mut regions = Vec::new();
        for (pc, block) in accesses {
            let i = info(0x400 + pc * 4, block);
            acc.observe(&i);
            regions.push(i.region);
            prop_assert!(acc.len() <= 16);
        }
        for r in regions {
            if let Some(res) = acc.end_residency(r) {
                prop_assert!(
                    res.footprint.contains(res.trigger_offset),
                    "footprint must contain the trigger"
                );
                prop_assert_eq!(res.region, r);
            }
        }
        prop_assert!(acc.is_empty() || acc.len() <= 16);
    }
}
