//! The accumulation structures: Bingo's "small auxiliary storage" that
//! records spatial patterns while the processor actively accesses a region
//! (Section IV), organized as in SMS:
//!
//! * a **filter table** holds regions that have seen only their trigger
//!   access so far — single-access regions (pointer chases, random reads)
//!   churn here without disturbing patterns under construction;
//! * the **accumulation table** holds regions with at least two accesses
//!   and collects their footprints until the end of residency.
//!
//! A residency ends when a block of the region is evicted from the cache,
//! or early when the accumulation table overflows; either way the recorded
//! pattern is handed to the history table for training.

use bingo_sim::{AccessInfo, RegionId};

use crate::event::EventKind;
use crate::footprint::Footprint;

/// A completed (or force-ended) region residency: the trigger information
/// plus the accumulated footprint, ready for history training.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Residency {
    /// Region observed.
    pub region: RegionId,
    /// PC of the trigger access.
    pub trigger_pc: u64,
    /// Block index of the trigger access.
    pub trigger_block: u64,
    /// In-region offset of the trigger access.
    pub trigger_offset: u32,
    /// Blocks touched during the residency (always includes the trigger).
    pub footprint: Footprint,
}

impl Residency {
    /// The event key of the given kind for this residency's trigger.
    pub fn key(&self, kind: EventKind) -> u64 {
        kind.key_parts(
            self.trigger_pc,
            self.trigger_block,
            self.trigger_offset as u64,
        )
    }
}

#[derive(Copy, Clone, Debug)]
struct Slot {
    residency: Residency,
    last_touch: u64,
}

/// Result of observing one access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// Whether this access was the region's trigger (first access of a new
    /// residency) — the moment the prefetcher makes its prediction.
    pub trigger: bool,
    /// A residency evicted by accumulation-table overflow, ready for early
    /// training.
    pub evicted: Option<Residency>,
}

/// Filter table + LRU accumulation table.
///
/// Each table keeps a dense column of region keys parallel to its slot
/// vector: the membership scan that runs on every access walks only the
/// key column, and the wide slot data is touched on a match. The columns
/// move in lockstep (every push / `swap_remove` is mirrored).
#[derive(Debug)]
pub struct AccumulationTable {
    filter_regions: Vec<RegionId>,
    filter: Vec<Slot>,
    slot_regions: Vec<RegionId>,
    slots: Vec<Slot>,
    filter_capacity: usize,
    capacity: usize,
    region_blocks: u32,
    stamp: u64,
}

impl AccumulationTable {
    /// Creates a table tracking up to `capacity` concurrent multi-access
    /// residencies (plus an equally-sized filter for single-access
    /// regions) of `region_blocks`-block regions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `region_blocks` is out of `1..=64`.
    pub fn new(capacity: usize, region_blocks: u32) -> Self {
        assert!(capacity > 0, "accumulation table needs capacity");
        assert!(
            (1..=64).contains(&region_blocks),
            "region blocks {region_blocks} out of range"
        );
        let filter_capacity = capacity.max(8);
        AccumulationTable {
            filter_regions: Vec::with_capacity(filter_capacity),
            filter: Vec::with_capacity(filter_capacity),
            slot_regions: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            filter_capacity,
            capacity,
            region_blocks,
            stamp: 0,
        }
    }

    /// Number of live multi-access residencies.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no multi-access residency is live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of single-access regions currently in the filter.
    pub fn filter_len(&self) -> usize {
        self.filter.len()
    }

    /// Observes a demand access. Returns whether it triggered a new
    /// residency and any residency evicted by overflow (for early
    /// training).
    pub fn observe(&mut self, info: &AccessInfo) -> Observation {
        bingo_sim::audit_assert!(
            self.slots.len() <= self.capacity && self.filter.len() <= self.filter_capacity,
            "accumulation occupancy invariant: {} slots (cap {}), {} filtered (cap {})",
            self.slots.len(),
            self.capacity,
            self.filter.len(),
            self.filter_capacity
        );
        self.stamp += 1;
        let stamp = self.stamp;

        // Already promoted: extend the footprint.
        if let Some(i) = self.slot_regions.iter().position(|r| *r == info.region) {
            let slot = &mut self.slots[i];
            slot.residency.footprint.set(info.offset);
            slot.last_touch = stamp;
            return Observation {
                trigger: false,
                evicted: None,
            };
        }

        // Second access to a filtered region: promote to accumulation.
        if let Some(i) = self.filter_regions.iter().position(|r| *r == info.region) {
            self.filter_regions.swap_remove(i);
            let mut slot = self.filter.swap_remove(i);
            slot.residency.footprint.set(info.offset);
            slot.last_touch = stamp;
            let evicted = if self.slots.len() >= self.capacity {
                let (idx, _) = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_touch)
                    .expect("table is non-empty when full");
                self.slot_regions.swap_remove(idx);
                Some(self.slots.swap_remove(idx).residency)
            } else {
                None
            };
            self.slot_regions.push(slot.residency.region);
            self.slots.push(slot);
            return Observation {
                trigger: false,
                evicted,
            };
        }

        // Trigger access: new residency enters the filter.
        let mut footprint = Footprint::empty(self.region_blocks);
        footprint.set(info.offset);
        let residency = Residency {
            region: info.region,
            trigger_pc: info.pc.raw(),
            trigger_block: info.block.index(),
            trigger_offset: info.offset,
            footprint,
        };
        if self.filter.len() >= self.filter_capacity {
            // Single-access regions carry no spatial pattern; the oldest is
            // silently dropped (it would not pass training anyway).
            let (idx, _) = self
                .filter
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_touch)
                .expect("filter is non-empty when full");
            self.filter_regions.swap_remove(idx);
            self.filter.swap_remove(idx);
        }
        self.filter_regions.push(residency.region);
        self.filter.push(Slot {
            residency,
            last_touch: stamp,
        });
        Observation {
            trigger: true,
            evicted: None,
        }
    }

    /// Ends the residency of `region`, if live in either structure,
    /// returning it for training.
    pub fn end_residency(&mut self, region: RegionId) -> Option<Residency> {
        if let Some(idx) = self.slot_regions.iter().position(|r| *r == region) {
            self.slot_regions.swap_remove(idx);
            return Some(self.slots.swap_remove(idx).residency);
        }
        let idx = self.filter_regions.iter().position(|r| *r == region)?;
        self.filter_regions.swap_remove(idx);
        Some(self.filter.swap_remove(idx).residency)
    }

    /// Storage cost in bits: per slot a region tag (~36 b), trigger PC
    /// (16 b hashed), trigger offset, footprint, and LRU stamp (8 b); the
    /// filter stores the same minus the footprint.
    pub fn storage_bits(&self) -> u64 {
        Self::storage_bits_for(self.capacity, self.region_blocks)
    }

    /// [`AccumulationTable::storage_bits`] computed from the geometry
    /// alone, without allocating the table.
    pub fn storage_bits_for(capacity: usize, region_blocks: u32) -> u64 {
        let filter_capacity = capacity.max(8);
        let offset_bits = 64 - (region_blocks as u64 - 1).leading_zeros() as u64;
        let acc = capacity as u64 * (36 + 16 + offset_bits + region_blocks as u64 + 8);
        let filter = filter_capacity as u64 * (36 + 16 + offset_bits + 8);
        acc + filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{BlockAddr, CoreId, Pc, RegionGeometry};

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    #[test]
    fn trigger_then_record_builds_footprint() {
        let mut t = AccumulationTable::new(4, 32);
        let o = t.observe(&info(0x400, 32 * 5 + 3));
        assert!(o.trigger);
        assert!(!t.observe(&info(0x404, 32 * 5 + 7)).trigger);
        assert!(!t.observe(&info(0x408, 32 * 5 + 3)).trigger);
        let res = t.end_residency(RegionId::new(5)).expect("live residency");
        assert_eq!(res.trigger_pc, 0x400);
        assert_eq!(res.trigger_offset, 3);
        assert_eq!(res.footprint.iter().collect::<Vec<_>>(), vec![3, 7]);
        assert!(t.is_empty());
    }

    #[test]
    fn end_residency_of_untracked_region_is_none() {
        let mut t = AccumulationTable::new(4, 32);
        assert!(t.end_residency(RegionId::new(9)).is_none());
    }

    #[test]
    fn single_access_regions_stay_in_filter() {
        let mut t = AccumulationTable::new(4, 32);
        t.observe(&info(0x1, 32));
        assert_eq!(t.filter_len(), 1);
        assert!(t.is_empty(), "no promotion on first access");
    }

    #[test]
    fn second_access_promotes_to_accumulation() {
        let mut t = AccumulationTable::new(4, 32);
        t.observe(&info(0x1, 32));
        t.observe(&info(0x1, 33));
        assert_eq!(t.filter_len(), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn filter_floods_do_not_disturb_accumulated_residencies() {
        let mut t = AccumulationTable::new(2, 32);
        // Build a 2-access residency in region 0.
        t.observe(&info(0xA, 0));
        t.observe(&info(0xA, 1));
        // Flood with 100 single-access regions (chase-like traffic).
        for r in 10..110u64 {
            t.observe(&info(0xB, r * 32));
        }
        // The accumulated residency is intact.
        let res = t.end_residency(RegionId::new(0)).expect("survives flood");
        assert_eq!(res.footprint.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn overflow_evicts_lru_promoted_residency() {
        let mut t = AccumulationTable::new(2, 32);
        // Three promoted residencies; capacity 2.
        t.observe(&info(0x1, 32));
        t.observe(&info(0x1, 33));
        t.observe(&info(0x2, 64));
        t.observe(&info(0x2, 65));
        // Touch region 1 so region 2 becomes LRU.
        t.observe(&info(0x1, 34));
        t.observe(&info(0x3, 96));
        let o = t.observe(&info(0x3, 97)); // promotion overflows
        let evicted = o.evicted.expect("eviction on overflow");
        assert_eq!(evicted.region, RegionId::new(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn distinct_regions_tracked_independently() {
        let mut t = AccumulationTable::new(8, 32);
        t.observe(&info(0xA, 0));
        t.observe(&info(0xB, 32));
        t.observe(&info(0xA, 1));
        t.observe(&info(0xB, 40));
        let a = t.end_residency(RegionId::new(0)).unwrap();
        let b = t.end_residency(RegionId::new(1)).unwrap();
        assert_eq!(a.footprint.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(b.footprint.iter().collect::<Vec<_>>(), vec![0, 8]);
    }

    #[test]
    fn residency_event_keys_match_trigger_access() {
        let mut t = AccumulationTable::new(4, 32);
        let trigger = info(0x400, 32 * 5 + 3);
        t.observe(&trigger);
        let res = t.end_residency(trigger.region).unwrap();
        for kind in EventKind::LONGEST_FIRST {
            assert_eq!(res.key(kind), kind.key_of(&trigger), "{kind}");
        }
    }

    #[test]
    fn end_residency_finds_filtered_regions_too() {
        let mut t = AccumulationTable::new(4, 32);
        t.observe(&info(0x1, 32));
        let res = t.end_residency(RegionId::new(1)).expect("in filter");
        assert_eq!(res.footprint.count(), 1);
    }

    #[test]
    fn storage_bits_scales_with_capacity() {
        let small = AccumulationTable::new(32, 32).storage_bits();
        let large = AccumulationTable::new(64, 32).storage_bits();
        assert!(large > small);
        assert!(small > 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = AccumulationTable::new(0, 32);
    }
}
