//! # bingo — the Bingo spatial data prefetcher
//!
//! Reproduction of *Bingo Spatial Data Prefetcher* (Bakhshalipour et al.,
//! HPCA 2019). Bingo is a per-page-history spatial prefetcher that
//! associates each region footprint with **two** events extracted from the
//! trigger access — the long `PC+Address` and the short `PC+Offset` — and
//! stores both associations in a **single unified history table** indexed by
//! a hash of the short event and tagged with the long event.
//!
//! On a trigger access Bingo looks up the long event first (most accurate);
//! on a miss it re-searches the *same set* with the short event (most
//! recurring), voting across multiple matches: a block is prefetched if it
//! appears in ≥ 20 % of the matching footprints.
//!
//! This crate also ships the generalized multi-event TAGE-like prefetcher
//! used by the paper's motivation study ([`multi_event`]), exercising all
//! five event heuristics from `PC+Address` down to bare `Offset`.
//!
//! ## Quickstart
//!
//! ```
//! use bingo::{Bingo, BingoConfig};
//! use bingo_sim::{Instr, Addr, Pc, System, SystemConfig, NoPrefetcher};
//!
//! // Stream over regions so the footprints recur.
//! fn source() -> Box<dyn bingo_sim::InstrSource> {
//!     let mut n = 0u64;
//!     Box::new(move || {
//!         n += 1;
//!         if n % 3 == 0 {
//!             Instr::Load { pc: Pc::new(0x400), addr: Addr::new((n / 3) * 64), dep: None }
//!         } else {
//!             Instr::Op
//!         }
//!     })
//! }
//!
//! let cfg = SystemConfig::tiny();
//! let base = System::new(cfg, vec![source()], vec![Box::new(NoPrefetcher)], 30_000).run();
//! let with_bingo = System::new(
//!     cfg,
//!     vec![source()],
//!     vec![Box::new(Bingo::new(BingoConfig::paper()))],
//!     30_000,
//! )
//! .run();
//! assert!(with_bingo.llc.demand_misses < base.llc.demand_misses);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulation;
pub mod analysis;
pub mod bingo;
pub mod event;
pub mod footprint;
pub mod history;
pub mod multi_event;

pub use crate::bingo::{Bingo, BingoConfig, BingoStats, PredictionStep};
pub use accumulation::{AccumulationTable, Observation, Residency};
pub use analysis::{EventProfile, SpatialProfiler, SpatialReport};
pub use event::{Event, EventKind};
pub use footprint::Footprint;
pub use history::UnifiedHistoryTable;
pub use multi_event::{EventTable, MultiEventConfig, MultiEventPrefetcher, MultiEventStats};
