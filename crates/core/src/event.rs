//! Trigger-access *events*: the keys to which page footprints are
//! associated.
//!
//! The paper's motivation study (Section III, Fig. 2) evaluates five event
//! heuristics extracted from the trigger access, ordered from longest
//! (most incidents coinciding — most accurate, least recurring) to shortest:
//!
//! 1. `PC+Address` — trigger PC and trigger block address,
//! 2. `PC+Offset`  — trigger PC and the block's offset within its region,
//! 3. `PC`         — trigger PC alone,
//! 4. `Address`    — trigger block address alone,
//! 5. `Offset`     — the in-region offset alone.
//!
//! Bingo itself uses only the first two; [`crate::multi_event`] exercises
//! all five for the motivation figures.

use bingo_sim::AccessInfo;

/// One of the five event heuristics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Trigger PC combined with the trigger block address (longest).
    PcAddress,
    /// Trigger PC combined with the in-region block offset.
    PcOffset,
    /// Trigger PC alone.
    Pc,
    /// Trigger block address alone.
    Address,
    /// In-region block offset alone (shortest).
    Offset,
}

impl EventKind {
    /// All five kinds, longest event first — the lookup priority order of a
    /// TAGE-like cascade.
    pub const LONGEST_FIRST: [EventKind; 5] = [
        EventKind::PcAddress,
        EventKind::PcOffset,
        EventKind::Pc,
        EventKind::Address,
        EventKind::Offset,
    ];

    /// Extracts this event's key from a trigger access.
    ///
    /// Keys of different kinds never collide because the kind is mixed into
    /// the key (each kind hashes into a disjoint stream).
    pub fn key_of(self, info: &AccessInfo) -> u64 {
        self.key_parts(info.pc.raw(), info.block.index(), info.offset as u64)
    }

    /// Computes the key from the raw trigger components (PC, block index,
    /// in-region offset) — used when re-deriving keys from a stored
    /// residency record.
    pub fn key_parts(self, pc: u64, block: u64, offset: u64) -> u64 {
        match self {
            EventKind::PcAddress => mix2(0xA1, pc, block),
            EventKind::PcOffset => mix2(0xA2, pc, offset),
            EventKind::Pc => mix2(0xA3, pc, 0),
            EventKind::Address => mix2(0xA4, block, 0),
            EventKind::Offset => mix2(0xA5, offset, 0),
        }
    }

    /// Short display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::PcAddress => "PC+Address",
            EventKind::PcOffset => "PC+Offset",
            EventKind::Pc => "PC",
            EventKind::Address => "Address",
            EventKind::Offset => "Offset",
        }
    }

    /// Number of "incidents" coinciding in the event — the paper's notion
    /// of event length, used only for ordering and display.
    pub fn length(self) -> u32 {
        match self {
            EventKind::PcAddress => 3, // PC + page + offset
            EventKind::PcOffset => 2,
            EventKind::Pc => 1,
            EventKind::Address => 2, // page + offset
            EventKind::Offset => 1,
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The (kind, key) pair actually stored or looked up.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// Which heuristic produced the key.
    pub kind: EventKind,
    /// The extracted key value.
    pub key: u64,
}

impl Event {
    /// Extracts the event of the given kind from a trigger access.
    pub fn from_access(kind: EventKind, info: &AccessInfo) -> Self {
        Event {
            kind,
            key: kind.key_of(info),
        }
    }
}

/// A strong 64-bit mixer (splitmix64 finalizer) over a salted pair.
fn mix2(salt: u64, a: u64, b: u64) -> u64 {
    let mut x = salt
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(b);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{BlockAddr, CoreId, Pc, RegionGeometry};

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    #[test]
    fn pc_address_distinguishes_addresses_with_same_offset() {
        // Blocks 5 and 37 share offset 5 in different 32-block regions.
        let a = info(0x400, 5);
        let b = info(0x400, 37);
        assert_ne!(
            EventKind::PcAddress.key_of(&a),
            EventKind::PcAddress.key_of(&b)
        );
        assert_eq!(
            EventKind::PcOffset.key_of(&a),
            EventKind::PcOffset.key_of(&b),
            "PC+Offset generalizes across regions"
        );
    }

    #[test]
    fn pc_event_ignores_address_entirely() {
        assert_eq!(
            EventKind::Pc.key_of(&info(0x400, 5)),
            EventKind::Pc.key_of(&info(0x400, 1234))
        );
        assert_ne!(
            EventKind::Pc.key_of(&info(0x400, 5)),
            EventKind::Pc.key_of(&info(0x404, 5))
        );
    }

    #[test]
    fn offset_event_ignores_pc() {
        assert_eq!(
            EventKind::Offset.key_of(&info(0x400, 37)),
            EventKind::Offset.key_of(&info(0x999, 5))
        );
    }

    #[test]
    fn address_event_ignores_pc_but_not_block() {
        assert_eq!(
            EventKind::Address.key_of(&info(0x400, 37)),
            EventKind::Address.key_of(&info(0x999, 37))
        );
        assert_ne!(
            EventKind::Address.key_of(&info(0x400, 37)),
            EventKind::Address.key_of(&info(0x400, 38))
        );
    }

    #[test]
    fn kinds_hash_into_disjoint_streams() {
        // Same raw inputs, different kinds -> different keys.
        let i = info(0x400, 5);
        let keys: Vec<u64> = EventKind::LONGEST_FIRST
            .iter()
            .map(|k| k.key_of(&i))
            .collect();
        for x in 0..keys.len() {
            for y in x + 1..keys.len() {
                assert_ne!(keys[x], keys[y], "kinds {x} and {y} collide");
            }
        }
    }

    #[test]
    fn ordering_is_longest_first() {
        let lens: Vec<u32> = EventKind::LONGEST_FIRST
            .iter()
            .map(|k| k.length())
            .collect();
        // PC+Address (3 incidents) is strictly the longest; no later event
        // exceeds its predecessor's cascade priority tier; Offset is among
        // the shortest.
        assert_eq!(lens[0], 3);
        assert!(lens.iter().skip(1).all(|&l| l < lens[0]));
        assert_eq!(*lens.last().unwrap(), 1);
    }

    #[test]
    fn event_from_access_round_trip() {
        let i = info(0x400, 5);
        let e = Event::from_access(EventKind::PcOffset, &i);
        assert_eq!(e.kind, EventKind::PcOffset);
        assert_eq!(e.key, EventKind::PcOffset.key_of(&i));
    }
}
