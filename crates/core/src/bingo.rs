//! The Bingo spatial data prefetcher (Section IV of the paper).
//!
//! Bingo records a footprint per region residency in an
//! [`AccumulationTable`], transfers it on end-of-residency to a single
//! [`UnifiedHistoryTable`] tagged with the trigger's `PC+Address`, and on
//! each new trigger access looks the table up with `PC+Address` first and
//! `PC+Offset` second. When only the short event matches — possibly in
//! several ways at once — a block is prefetched if it appears in at least
//! 20 % of the matching footprints (the paper's empirically best
//! multi-match heuristic).

use bingo_sim::{
    throttle::RAISED_VOTE_THRESHOLD, AccessInfo, BlockAddr, FaultInjector, FaultPlan, FaultStats,
    PrefetchSource, Prefetcher, RegionGeometry, ThrottleLevel,
};

use crate::accumulation::{AccumulationTable, Residency};
use crate::event::EventKind;
use crate::footprint::Footprint;
use crate::history::UnifiedHistoryTable;

/// Configuration of a [`Bingo`] prefetcher.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BingoConfig {
    /// Spatial region geometry (2 KB regions by default).
    pub region: RegionGeometry,
    /// Total history-table entries (16 K in the paper's chosen design).
    pub history_entries: usize,
    /// History-table associativity (16 in the paper).
    pub history_ways: usize,
    /// Concurrent residencies tracked by the accumulation table.
    pub accumulation_entries: usize,
    /// Fraction of matching short-event footprints that must contain a
    /// block for it to be prefetched (0.2 in the paper).
    pub vote_threshold: f64,
    /// Minimum touched blocks for a residency to be worth training
    /// (single-access regions carry no spatial pattern).
    pub min_footprint_blocks: u32,
    /// Whether cache evictions end residencies (the paper's training
    /// signal). When disabled, residencies end only on accumulation-table
    /// overflow — the `ablation_training` study's variant.
    pub train_on_eviction: bool,
}

impl BingoConfig {
    /// The paper's configuration: 2 KB regions, 16 K-entry 16-way history
    /// table (119 KB total), 64-entry accumulation table, 20 % voting.
    pub fn paper() -> Self {
        BingoConfig {
            region: RegionGeometry::default(),
            history_entries: 16 * 1024,
            history_ways: 16,
            accumulation_entries: 64,
            vote_threshold: 0.2,
            min_footprint_blocks: 2,
            train_on_eviction: true,
        }
    }

    /// Same as [`BingoConfig::paper`] but with a different history size —
    /// the knob of the storage sensitivity study (Fig. 6).
    pub fn with_history_entries(entries: usize) -> Self {
        BingoConfig {
            history_entries: entries,
            ..Self::paper()
        }
    }

    /// Metadata storage in bits of a prefetcher built from this
    /// configuration, computed without allocating any tables. Always equal
    /// to [`Prefetcher::storage_bits`] of the built instance.
    pub fn storage_bits(&self) -> u64 {
        let region_blocks = self.region.blocks_per_region() as u32;
        UnifiedHistoryTable::storage_bits_for(self.history_entries, region_blocks)
            + AccumulationTable::storage_bits_for(self.accumulation_entries, region_blocks)
    }
}

impl Default for BingoConfig {
    fn default() -> Self {
        BingoConfig::paper()
    }
}

/// Lookup-outcome counters (match-probability diagnostics).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BingoStats {
    /// Trigger accesses that performed a history lookup.
    pub lookups: u64,
    /// Lookups satisfied by the long event (`PC+Address`).
    pub long_hits: u64,
    /// Lookups satisfied by the short event (`PC+Offset`) after a long
    /// miss, where footprint voting produced at least one prefetchable
    /// block.
    pub short_hits: u64,
    /// Lookups with no match (no prefetch issued).
    pub no_match: u64,
    /// Short-event lookups whose vote vetoed every block except the
    /// trigger (no prefetch issued). Possible whenever `vote_threshold`
    /// demands more agreement than the matching footprints have; not a
    /// match for [`BingoStats::match_probability`] purposes.
    pub empty_votes: u64,
    /// Residencies transferred into the history table.
    pub trainings: u64,
}

impl BingoStats {
    /// Fraction of lookups that produced a prediction.
    pub fn match_probability(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.long_hits + self.short_hits) as f64 / self.lookups as f64
        }
    }
}

/// Everything observable about one access fed through a prefetcher's
/// prediction path, as returned by [`Bingo::step`] and
/// [`crate::MultiEventPrefetcher::step`].
///
/// This is the deterministic single-step API the differential-testing
/// harness drives: a reference model replayed over the same access
/// sequence must produce an identical `PredictionStep` at every step, so
/// equivalence can be asserted without peeking at internal tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredictionStep {
    /// Whether the access was a trigger (the first touch of a new region
    /// residency) and therefore consulted the history.
    pub trigger: bool,
    /// Which event produced the prediction;
    /// [`PrefetchSource::Unattributed`] when nothing was predicted.
    pub source: PrefetchSource,
    /// The prefetch candidates emitted, in emission order.
    pub prefetches: Vec<BlockAddr>,
}

/// The Bingo prefetcher.
#[derive(Debug)]
pub struct Bingo {
    cfg: BingoConfig,
    accumulation: AccumulationTable,
    history: UnifiedHistoryTable,
    short_matches: Vec<Footprint>,
    /// Seeded metadata-corruption source for robustness experiments; `None`
    /// in normal operation.
    faults: Option<FaultInjector>,
    /// Which event produced the most recent prediction, for lifecycle
    /// telemetry ([`Prefetcher::last_burst_source`]).
    last_source: PrefetchSource,
    /// Whether the most recent access was a trigger, for [`Bingo::step`].
    last_trigger: bool,
    /// Effective aggressiveness pushed by the memory system's throttle
    /// controller; [`ThrottleLevel::Full`] unless throttling is enabled.
    throttle: ThrottleLevel,
    /// Lookup statistics.
    pub stats: BingoStats,
}

impl Bingo {
    /// Creates a Bingo prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`UnifiedHistoryTable::new`]).
    pub fn new(cfg: BingoConfig) -> Self {
        let region_blocks = cfg.region.blocks_per_region() as u32;
        Bingo {
            accumulation: AccumulationTable::new(cfg.accumulation_entries, region_blocks),
            history: UnifiedHistoryTable::new(cfg.history_entries, cfg.history_ways, region_blocks),
            short_matches: Vec::with_capacity(cfg.history_ways),
            faults: None,
            last_source: PrefetchSource::Unattributed,
            last_trigger: false,
            throttle: ThrottleLevel::Full,
            stats: BingoStats::default(),
            cfg,
        }
    }

    /// Creates a Bingo prefetcher whose metadata is corrupted by a seeded
    /// [`FaultInjector`]: stored footprints get random bit flips, history
    /// entries are randomly dropped, and prefetch candidates are randomly
    /// discarded, each at the plan's configured rate. The paper's
    /// graceful-degradation claim says this prefetcher must never corrupt
    /// the simulation — only lose coverage toward no-prefetch behavior.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry or if a plan rate is not a
    /// probability.
    pub fn with_faults(cfg: BingoConfig, plan: FaultPlan) -> Self {
        let mut b = Bingo::new(cfg);
        b.faults = Some(FaultInjector::new(plan));
        b
    }

    /// Injection counts when built via [`Bingo::with_faults`], else `None`.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|inj| &inj.stats)
    }

    /// The configuration in use.
    pub fn config(&self) -> &BingoConfig {
        &self.cfg
    }

    /// Feeds one access through the full observe/train/predict path and
    /// returns everything an external checker can observe about it.
    ///
    /// Behaviorally identical to [`Prefetcher::on_access`] — this is the
    /// same code path, not a parallel one — but it additionally reports
    /// whether the access was a trigger and which event the prediction
    /// came from, which is what the differential harness diffs against
    /// the executable specification.
    pub fn step(&mut self, info: &AccessInfo) -> PredictionStep {
        let mut prefetches = Vec::new();
        self.on_access(info, &mut prefetches);
        PredictionStep {
            trigger: self.last_trigger,
            source: self.last_source,
            prefetches,
        }
    }

    fn train(&mut self, mut residency: Residency) {
        if residency.footprint.count() < self.cfg.min_footprint_blocks {
            return;
        }
        // Fault injection: a footprint headed for storage may have one
        // random bit flipped, modeling a corrupted metadata write.
        if let Some(inj) = self.faults.as_mut() {
            if inj.should_flip_footprint_bit() {
                let offset = inj.pick(u64::from(residency.footprint.len())) as u32;
                residency.footprint.flip(offset);
            }
        }
        self.stats.trainings += 1;
        self.history.insert(
            residency.key(EventKind::PcAddress),
            residency.key(EventKind::PcOffset),
            residency.footprint,
        );
    }

    /// The short-event vote threshold in effect: the configured one,
    /// raised to at least [`RAISED_VOTE_THRESHOLD`] while the throttle sits
    /// at [`ThrottleLevel::RaisedVote`]. Raising the threshold only grows
    /// the votes a block needs, so the voted set shrinks monotonically —
    /// the throttled prediction set stays a subset of the unthrottled one.
    fn effective_vote_threshold(&self) -> f64 {
        match self.throttle {
            ThrottleLevel::RaisedVote => self.cfg.vote_threshold.max(RAISED_VOTE_THRESHOLD),
            _ => self.cfg.vote_threshold,
        }
    }

    fn predict(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        self.stats.lookups += 1;
        let long = EventKind::PcAddress.key_of(info);
        let short = EventKind::PcOffset.key_of(info);
        let footprint = if let Some(fp) = self.history.lookup_long(long, short) {
            self.stats.long_hits += 1;
            self.last_source = PrefetchSource::LongEvent;
            fp
        } else {
            let mut matches = std::mem::take(&mut self.short_matches);
            self.history.lookup_short(short, &mut matches);
            let result = if matches.is_empty() {
                self.stats.no_match += 1;
                None
            } else {
                let fp = Footprint::vote(&matches, self.effective_vote_threshold());
                // A strict threshold can veto every block (or leave only
                // the trigger, which is never re-prefetched): that lookup
                // issued nothing and must not count as a hit.
                if fp.iter().any(|offset| offset != info.offset) {
                    self.stats.short_hits += 1;
                    self.last_source = PrefetchSource::ShortVote;
                    Some(fp)
                } else {
                    self.stats.empty_votes += 1;
                    None
                }
            };
            self.short_matches = matches;
            match result {
                Some(fp) => fp,
                None => return,
            }
        };
        for offset in footprint.iter() {
            if offset != info.offset {
                out.push(self.cfg.region.block_at(info.region, offset));
            }
        }
    }
}

impl Prefetcher for Bingo {
    fn name(&self) -> &str {
        "Bingo"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        self.last_source = PrefetchSource::Unattributed;
        // Fault injection: metadata loss — a random valid history entry
        // vanishes, as if its storage cell were corrupted and invalidated.
        if let Some(inj) = self.faults.as_mut() {
            if inj.should_drop_history_entry() {
                let pick = inj.pick(1 << 48);
                self.history.evict_entry(pick);
            }
        }
        let observation = self.accumulation.observe(info);
        self.last_trigger = observation.trigger;
        if let Some(res) = observation.evicted {
            self.train(res);
        }
        if observation.trigger {
            self.predict(info, out);
            // Throttle degrees beyond the raised vote cut the burst after
            // prediction, so table state and lookup recency evolve exactly
            // as unthrottled — throttling only ever subtracts candidates.
            match self.throttle {
                ThrottleLevel::Full | ThrottleLevel::RaisedVote => {}
                ThrottleLevel::TriggerOnly => out.truncate(1),
                ThrottleLevel::Stopped => {
                    out.clear();
                    self.last_source = PrefetchSource::Unattributed;
                }
            }
        }
        // Fault injection: individual prefetch requests silently dropped
        // on their way to the memory system.
        if let Some(inj) = self.faults.as_mut() {
            out.retain(|_| !inj.should_drop_prefetch());
        }
    }

    fn on_eviction(&mut self, block: BlockAddr) {
        if !self.cfg.train_on_eviction {
            return;
        }
        let region = self.cfg.region.region_of(block);
        if let Some(res) = self.accumulation.end_residency(region) {
            self.train(res);
        }
    }

    fn set_throttle_level(&mut self, level: ThrottleLevel) {
        self.throttle = level;
    }

    fn storage_bits(&self) -> u64 {
        self.history.storage_bits() + self.accumulation.storage_bits()
    }

    fn debug_stats(&self) -> String {
        let mut out = format!(
            "lookups={} long={} short={} none={} empty_votes={} trainings={} valid={}",
            self.stats.lookups,
            self.stats.long_hits,
            self.stats.short_hits,
            self.stats.no_match,
            self.stats.empty_votes,
            self.stats.trainings,
            self.history.valid_entries()
        );
        if let Some(inj) = &self.faults {
            out.push_str(&format!(
                " faults: bits_flipped={} entries_dropped={} prefetches_dropped={}",
                inj.stats.bits_flipped, inj.stats.entries_dropped, inj.stats.prefetches_dropped
            ));
        }
        if self.throttle != ThrottleLevel::Full {
            out.push_str(&format!(" throttle={}", self.throttle));
        }
        out
    }

    fn metrics(&self) -> Vec<(&'static str, f64)> {
        let mut out = vec![
            ("lookups", self.stats.lookups as f64),
            ("long_hits", self.stats.long_hits as f64),
            ("short_hits", self.stats.short_hits as f64),
            ("empty_votes", self.stats.empty_votes as f64),
            (
                "matches",
                (self.stats.long_hits + self.stats.short_hits) as f64,
            ),
            ("trainings", self.stats.trainings as f64),
        ];
        if let Some(inj) = &self.faults {
            out.push(("fault_bits_flipped", inj.stats.bits_flipped as f64));
            out.push(("fault_entries_dropped", inj.stats.entries_dropped as f64));
            out.push((
                "fault_prefetches_dropped",
                inj.stats.prefetches_dropped as f64,
            ));
        }
        out
    }

    fn last_burst_source(&self) -> PrefetchSource {
        self.last_source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{Addr, CoreId, Pc, RegionId};

    fn geometry() -> RegionGeometry {
        RegionGeometry::default()
    }

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = geometry();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn small() -> Bingo {
        Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            ..BingoConfig::paper()
        })
    }

    /// Visits blocks `offsets` of `region`, then evicts the trigger block
    /// to end the residency.
    fn visit(b: &mut Bingo, pc: u64, region: u64, offsets: &[u32]) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        let mut predicted = Vec::new();
        for (i, &off) in offsets.iter().enumerate() {
            out.clear();
            b.on_access(&info(pc, region * 32 + off as u64), &mut out);
            if i == 0 {
                predicted = out.clone();
            }
        }
        b.on_eviction(BlockAddr::new(region * 32 + offsets[0] as u64));
        predicted
    }

    #[test]
    fn long_event_match_replays_exact_footprint() {
        let mut b = small();
        // First visit to region 10: trains footprint {3, 7, 9}.
        let p = visit(&mut b, 0x400, 10, &[3, 7, 9]);
        assert!(p.is_empty(), "nothing learned yet");
        // Re-visit the *same* region with the same PC and trigger block:
        // the long event (PC+Address) matches.
        let p = visit(&mut b, 0x400, 10, &[3]);
        assert_eq!(b.stats.long_hits, 1);
        let blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        assert_eq!(blocks, vec![10 * 32 + 7, 10 * 32 + 9]);
    }

    #[test]
    fn short_event_match_covers_new_regions() {
        let mut b = small();
        visit(&mut b, 0x400, 10, &[3, 7, 9]);
        // A *different* region, same PC and same offset 3: long event
        // misses, short event (PC+Offset) hits -> compulsory-miss coverage.
        let p = visit(&mut b, 0x400, 99, &[3]);
        assert_eq!(b.stats.long_hits, 0);
        assert_eq!(b.stats.short_hits, 1);
        let blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        assert_eq!(blocks, vec![99 * 32 + 7, 99 * 32 + 9]);
    }

    #[test]
    fn different_offset_same_pc_does_not_match_short() {
        let mut b = small();
        visit(&mut b, 0x400, 10, &[3, 7, 9]);
        let p = visit(&mut b, 0x400, 99, &[5]);
        assert!(p.is_empty());
        // Two no-match lookups: the very first trigger and this one.
        assert_eq!(b.stats.no_match, 2);
    }

    #[test]
    fn vote_includes_blocks_from_any_of_few_matches() {
        let mut b = small();
        // Two residencies, same PC+Offset (offset 3) in different regions,
        // with different footprints.
        visit(&mut b, 0x400, 10, &[3, 7]);
        visit(&mut b, 0x400, 11, &[3, 9]);
        // New region: short lookup matches both; with the 20% threshold and
        // 2 matches, one vote suffices -> union {7, 9}.
        let p = visit(&mut b, 0x400, 99, &[3]);
        let mut blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![99 * 32 + 7, 99 * 32 + 9]);
    }

    #[test]
    fn majority_threshold_intersects_instead() {
        let mut b = Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            vote_threshold: 0.9,
            ..BingoConfig::paper()
        });
        visit(&mut b, 0x400, 10, &[3, 7]);
        visit(&mut b, 0x400, 11, &[3, 9]);
        visit(&mut b, 0x400, 12, &[3, 7]);
        let p = visit(&mut b, 0x400, 99, &[3]);
        let blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        // Block 7 has 2/3 votes, 9 has 1/3: 90% threshold keeps none of
        // them... need ceil(0.9*3)=3 votes. Only offset 3 (the trigger, not
        // re-prefetched) qualifies.
        assert!(blocks.is_empty(), "got {blocks:?}");
    }

    #[test]
    fn empty_vote_is_not_counted_as_a_short_hit() {
        let mut b = Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            vote_threshold: 0.9,
            ..BingoConfig::paper()
        });
        // Two footprints sharing PC+Offset (offset 3) but agreeing only on
        // the trigger block itself.
        visit(&mut b, 0x400, 10, &[3, 7]);
        visit(&mut b, 0x400, 11, &[3, 9]);
        let before = b.stats;
        // New region: the short lookup matches both entries, but at a 90 %
        // threshold with 2 matches every block needs 2 votes — only the
        // trigger offset 3 qualifies, so zero prefetches are issued.
        let p = visit(&mut b, 0x400, 99, &[3]);
        assert!(p.is_empty(), "no prefetch can be issued, got {p:?}");
        assert_eq!(
            b.stats.short_hits, before.short_hits,
            "a vetoed vote must not count as a short hit"
        );
        assert_eq!(b.stats.empty_votes, before.empty_votes + 1);
        assert_eq!(b.stats.lookups, before.lookups + 1);
        assert!(
            b.stats.match_probability() <= before.match_probability(),
            "an issue-nothing lookup must not raise the match probability"
        );
    }

    #[test]
    fn vote_exactly_at_threshold_prefetches_the_block() {
        // 4 matching footprints at a 50% threshold: need = ceil(2.0) = 2
        // votes. Offset 7 appears in exactly 2/4 — at the boundary — and
        // must be prefetched; offsets 9 and 21 appear once and must not.
        let mut b = Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            vote_threshold: 0.5,
            ..BingoConfig::paper()
        });
        visit(&mut b, 0x400, 10, &[3, 7]);
        visit(&mut b, 0x400, 11, &[3, 7]);
        visit(&mut b, 0x400, 12, &[3, 9]);
        visit(&mut b, 0x400, 13, &[3, 21]);
        let p = visit(&mut b, 0x400, 99, &[3]);
        let blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        assert_eq!(blocks, vec![99 * 32 + 7], "only the at-threshold block");
    }

    #[test]
    fn single_way_short_match_fires_even_at_strict_threshold() {
        // One matching footprint: need = ceil(threshold * 1) = 1 for every
        // valid threshold, so a single-way match always replays its whole
        // footprint — including under a 90% threshold.
        let mut b = Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 8,
            vote_threshold: 0.9,
            ..BingoConfig::paper()
        });
        visit(&mut b, 0x400, 10, &[3, 7, 9]);
        let p = visit(&mut b, 0x400, 99, &[3]);
        let blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        assert_eq!(blocks, vec![99 * 32 + 7, 99 * 32 + 9]);
        assert_eq!(b.stats.short_hits, 1);
    }

    #[test]
    fn step_reports_trigger_source_and_prefetches() {
        let mut b = small();
        // First touch of region 10: a trigger with nothing learned.
        let s = b.step(&info(0x400, 10 * 32 + 3));
        assert!(s.trigger);
        assert_eq!(s.source, PrefetchSource::Unattributed);
        assert!(s.prefetches.is_empty());
        // Second touch of the same residency: not a trigger.
        let s = b.step(&info(0x400, 10 * 32 + 7));
        assert!(!s.trigger);
        b.on_eviction(BlockAddr::new(10 * 32 + 3));
        // Exact revisit: trigger + long-event prediction.
        let s = b.step(&info(0x400, 10 * 32 + 3));
        assert!(s.trigger);
        assert_eq!(s.source, PrefetchSource::LongEvent);
        assert_eq!(s.prefetches, vec![BlockAddr::new(10 * 32 + 7)]);
    }

    #[test]
    fn step_matches_on_access_exactly() {
        // step() must be the same code path as on_access, not a parallel
        // one: two identically configured instances fed the same stream
        // agree step-for-step.
        let mut via_step = small();
        let mut via_access = small();
        let pattern: &[(u64, u64)] = &[
            (0x400, 10 * 32 + 3),
            (0x400, 10 * 32 + 7),
            (0x404, 11 * 32 + 3),
            (0x400, 12 * 32 + 3),
            (0x400, 10 * 32 + 9),
        ];
        for &(pc, block) in pattern {
            let s = via_step.step(&info(pc, block));
            let mut out = Vec::new();
            via_access.on_access(&info(pc, block), &mut out);
            assert_eq!(s.prefetches, out);
            assert_eq!(s.source, via_access.last_burst_source());
        }
        assert_eq!(via_step.stats, via_access.stats);
    }

    #[test]
    fn config_storage_matches_built_prefetcher() {
        for cfg in [
            BingoConfig::paper(),
            BingoConfig::with_history_entries(4096),
            BingoConfig {
                history_entries: 256,
                history_ways: 4,
                accumulation_entries: 8,
                ..BingoConfig::paper()
            },
        ] {
            let built = Bingo::new(cfg);
            assert_eq!(cfg.storage_bits(), built.storage_bits());
        }
    }

    #[test]
    fn single_access_residencies_are_not_trained() {
        let mut b = small();
        visit(&mut b, 0x400, 10, &[3]); // one block only
        let p = visit(&mut b, 0x400, 99, &[3]);
        assert!(p.is_empty());
        assert_eq!(b.stats.trainings, 0);
    }

    #[test]
    fn accumulation_overflow_trains_early() {
        let mut b = Bingo::new(BingoConfig {
            history_entries: 256,
            history_ways: 4,
            accumulation_entries: 2,
            ..BingoConfig::paper()
        });
        let mut out = Vec::new();
        // Start three multi-access residencies without evictions; capacity
        // 2 forces the first one out and into the history table.
        b.on_access(&info(0x400, 10 * 32 + 3), &mut out);
        b.on_access(&info(0x400, 10 * 32 + 7), &mut out);
        b.on_access(&info(0x500, 11 * 32 + 1), &mut out);
        b.on_access(&info(0x500, 11 * 32 + 2), &mut out);
        b.on_access(&info(0x600, 12 * 32 + 2), &mut out);
        b.on_access(&info(0x600, 12 * 32 + 3), &mut out);
        assert_eq!(b.stats.trainings, 1);
    }

    #[test]
    fn eviction_of_untracked_region_is_ignored() {
        let mut b = small();
        b.on_eviction(BlockAddr::new(123456));
        assert_eq!(b.stats.trainings, 0);
    }

    #[test]
    fn paper_storage_is_about_119_kb() {
        let b = Bingo::new(BingoConfig::paper());
        let kb = b.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 110.0 && kb < 130.0,
            "Bingo storage {kb:.1} KB; paper reports 119 KB"
        );
    }

    #[test]
    fn retraining_updates_footprint() {
        let mut b = small();
        visit(&mut b, 0x400, 10, &[3, 7]);
        // Second residency of the same region/trigger with a new pattern.
        visit(&mut b, 0x400, 10, &[3, 12]);
        let p = visit(&mut b, 0x400, 10, &[3]);
        let blocks: Vec<u64> = p.iter().map(|x| x.index()).collect();
        assert_eq!(blocks, vec![10 * 32 + 12]);
    }

    #[test]
    fn match_probability_tracks_hits() {
        let mut b = small();
        visit(&mut b, 0x400, 10, &[3, 7]);
        visit(&mut b, 0x400, 11, &[3, 9]); // short hit on trigger
        visit(&mut b, 0x500, 50, &[1, 2]); // no match on trigger
        assert_eq!(b.stats.lookups, 3);
        assert!((b.stats.match_probability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fault_free_constructor_reports_no_fault_stats() {
        let b = small();
        assert!(b.fault_stats().is_none());
        assert!(!b.debug_stats().contains("faults:"));
    }

    #[test]
    fn zero_rate_fault_plan_is_behaviorally_invisible() {
        let mut clean = small();
        let mut faulty = Bingo::with_faults(
            BingoConfig {
                history_entries: 256,
                history_ways: 4,
                accumulation_entries: 8,
                ..BingoConfig::paper()
            },
            FaultPlan::none(99),
        );
        for b in [&mut clean, &mut faulty] {
            visit(b, 0x400, 10, &[3, 7, 9]);
        }
        assert_eq!(
            visit(&mut clean, 0x400, 10, &[3]),
            visit(&mut faulty, 0x400, 10, &[3]),
            "a zero-rate injector must not change predictions"
        );
        let stats = faulty.fault_stats().expect("injector attached");
        assert_eq!(
            (
                stats.bits_flipped,
                stats.entries_dropped,
                stats.prefetches_dropped
            ),
            (0, 0, 0)
        );
    }

    #[test]
    fn saturated_fault_plan_drops_every_prefetch() {
        let mut b = Bingo::with_faults(
            BingoConfig {
                history_entries: 256,
                history_ways: 4,
                accumulation_entries: 8,
                ..BingoConfig::paper()
            },
            FaultPlan::uniform(7, 1.0),
        );
        visit(&mut b, 0x400, 10, &[3, 7, 9]);
        let p = visit(&mut b, 0x400, 10, &[3]);
        assert!(p.is_empty(), "rate-1.0 drop must discard all candidates");
        let stats = b.fault_stats().expect("injector attached");
        assert!(stats.entries_dropped > 0, "history drops fired");
        assert!(b.debug_stats().contains("faults:"));
        let metrics = b.metrics();
        assert!(metrics
            .iter()
            .any(|(n, v)| *n == "fault_entries_dropped" && *v > 0.0));
    }

    #[test]
    fn burst_source_tracks_originating_event() {
        let mut b = small();
        assert_eq!(b.last_burst_source(), PrefetchSource::Unattributed);
        visit(&mut b, 0x400, 10, &[3, 7, 9]);
        // Same region, PC, and trigger: the long event replays.
        let mut out = Vec::new();
        b.on_access(&info(0x400, 10 * 32 + 3), &mut out);
        assert!(!out.is_empty());
        assert_eq!(b.last_burst_source(), PrefetchSource::LongEvent);
        b.on_eviction(BlockAddr::new(10 * 32 + 3));
        // New region, same PC+offset: the voted short event fires.
        out.clear();
        b.on_access(&info(0x400, 99 * 32 + 3), &mut out);
        assert!(!out.is_empty());
        assert_eq!(b.last_burst_source(), PrefetchSource::ShortVote);
        b.on_eviction(BlockAddr::new(99 * 32 + 3));
        // A no-match trigger clears the stale attribution.
        out.clear();
        b.on_access(&info(0x999, 55 * 32 + 1), &mut out);
        assert!(out.is_empty());
        assert_eq!(b.last_burst_source(), PrefetchSource::Unattributed);
    }

    #[test]
    fn throttled_predictions_are_subsets_of_unthrottled() {
        let train = |b: &mut Bingo| {
            // Two residencies sharing PC+Offset 3 with different spatial
            // patterns: the 20% vote unions them, the raised vote (0.75,
            // needing 2/2 votes) intersects them away entirely.
            visit(b, 0x400, 10, &[3, 7, 11]);
            visit(b, 0x400, 11, &[3, 9, 11]);
        };
        let mut full = small();
        train(&mut full);
        let unthrottled = visit(&mut full, 0x400, 99, &[3]);
        let full_set: Vec<u64> = unthrottled.iter().map(|x| x.index()).collect();
        assert_eq!(full_set.len(), 3, "union {{7, 9, 11}}: {full_set:?}");
        for level in [
            ThrottleLevel::RaisedVote,
            ThrottleLevel::TriggerOnly,
            ThrottleLevel::Stopped,
        ] {
            let mut b = small();
            train(&mut b);
            b.set_throttle_level(level);
            let got = visit(&mut b, 0x400, 99, &[3]);
            assert!(
                got.iter().all(|x| unthrottled.contains(x)),
                "{level}: {got:?} not a subset of {unthrottled:?}"
            );
            assert!(got.len() < unthrottled.len(), "{level} must subtract");
            assert!(b.debug_stats().contains("throttle="), "{level}");
            match level {
                // 0.75 * 2 matches -> both must agree: only offset 11.
                ThrottleLevel::RaisedVote => assert_eq!(got.len(), 1),
                ThrottleLevel::TriggerOnly => assert_eq!(got, unthrottled[..1]),
                ThrottleLevel::Stopped => assert!(got.is_empty()),
                ThrottleLevel::Full => unreachable!(),
            }
        }
    }

    #[test]
    fn raised_vote_leaves_long_event_bursts_intact() {
        let mut throttled = small();
        let mut clean = small();
        for b in [&mut throttled, &mut clean] {
            visit(b, 0x400, 10, &[3, 7, 9]);
        }
        throttled.set_throttle_level(ThrottleLevel::RaisedVote);
        // Exact revisit: the long event replays the stored footprint
        // verbatim — voting (and hence the raised threshold) never applies.
        assert_eq!(
            visit(&mut throttled, 0x400, 10, &[3]),
            visit(&mut clean, 0x400, 10, &[3])
        );
        assert_eq!(throttled.stats.long_hits, 1);
    }

    #[test]
    fn throttling_never_perturbs_table_state() {
        // Drive one instance through Stopped and back to Full; its
        // predictions afterwards must match an instance that was never
        // throttled, because training and lookup recency are untouched.
        let mut throttled = small();
        let mut clean = small();
        for b in [&mut throttled, &mut clean] {
            visit(b, 0x400, 10, &[3, 7, 9]);
        }
        throttled.set_throttle_level(ThrottleLevel::Stopped);
        let gagged = visit(&mut throttled, 0x400, 20, &[3, 5]);
        assert!(gagged.is_empty(), "stopped emits nothing");
        let _ = visit(&mut clean, 0x400, 20, &[3, 5]);
        throttled.set_throttle_level(ThrottleLevel::Full);
        assert_eq!(
            visit(&mut throttled, 0x400, 30, &[3]),
            visit(&mut clean, 0x400, 30, &[3]),
            "state diverged while throttled"
        );
    }

    #[test]
    fn region_id_consistency() {
        // Guard against geometry drift between sim and prefetcher.
        let i = info(0x1, 32 * 42 + 5);
        assert_eq!(i.region, RegionId::new(42));
        assert_eq!(i.offset, 5);
        assert_eq!(i.addr, Addr::new((32 * 42 + 5) * 64));
    }
}
