//! The generalized TAGE-like spatial prefetcher of the motivation study
//! (Section III) and the naive multi-table design Bingo improves upon
//! (Fig. 1-(b)).
//!
//! [`MultiEventPrefetcher`] keeps one history table per configured event
//! kind and, on a trigger access, looks them up longest event first,
//! prefetching the footprint of the first match. With a single event it
//! degenerates to a classic single-event spatial prefetcher (e.g.
//! `PC+Offset` ≈ SMS), which is how Fig. 2's per-event accuracy and match
//! probability are produced. With the event count swept from 1 to 5 it
//! produces Fig. 3. Its built-in redundancy probe — does the short table
//! predict the same footprint as the long table? — produces Fig. 4.

use bingo_sim::{AccessInfo, BlockAddr, PrefetchSource, Prefetcher, RegionGeometry, ThrottleLevel};

use crate::accumulation::{AccumulationTable, Residency};
use crate::bingo::PredictionStep;
use crate::event::EventKind;
use crate::footprint::Footprint;

#[derive(Copy, Clone, Debug)]
struct Entry {
    valid: bool,
    tag: u64,
    footprint: Footprint,
    last_touch: u64,
}

/// A conventional set-associative history table indexed and tagged by a
/// single event's key.
#[derive(Debug)]
pub struct EventTable {
    sets: Vec<Vec<Entry>>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    region_blocks: u32,
}

impl EventTable {
    /// Creates a table with `entries` entries in `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics unless `entries / ways` is a power of two.
    pub fn new(entries: usize, ways: usize, region_blocks: u32) -> Self {
        assert!(ways > 0 && entries >= ways, "invalid geometry");
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two() && sets * ways == entries,
            "entries {entries} / ways {ways} must give a power-of-two set count"
        );
        EventTable {
            sets: vec![
                vec![
                    Entry {
                        valid: false,
                        tag: 0,
                        footprint: Footprint::empty(region_blocks),
                        last_touch: 0,
                    };
                    ways
                ];
                sets
            ],
            ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
            region_blocks,
        }
    }

    fn set_of(&self, key: u64) -> usize {
        // The tag is the full key; index with the high-mixed bits.
        ((key >> 16) & self.set_mask) as usize
    }

    /// Inserts or re-trains the footprint for `key`.
    pub fn insert(&mut self, key: u64, footprint: Footprint) {
        debug_assert_eq!(footprint.len(), self.region_blocks);
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_of(key);
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == key) {
            e.footprint = footprint;
            e.last_touch = stamp;
            return;
        }
        let slot = set.iter().position(|e| !e.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(i, _)| i)
                .expect("sets are non-empty")
        });
        set[slot] = Entry {
            valid: true,
            tag: key,
            footprint,
            last_touch: stamp,
        };
    }

    /// Looks up `key`, updating recency on a hit.
    pub fn lookup(&mut self, key: u64) -> Option<Footprint> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_of(key);
        let e = self.sets[set_idx]
            .iter_mut()
            .find(|e| e.valid && e.tag == key)?;
        e.last_touch = stamp;
        Some(e.footprint)
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Storage in bits: footprint + 23-bit tag + valid + 4 LRU bits per
    /// entry (same accounting as the unified table).
    pub fn storage_bits(&self) -> u64 {
        Self::storage_bits_for(self.entries(), self.region_blocks)
    }

    /// [`EventTable::storage_bits`] computed from the geometry alone,
    /// without allocating the table.
    pub fn storage_bits_for(entries: usize, region_blocks: u32) -> u64 {
        entries as u64 * (region_blocks as u64 + 23 + 4)
    }
}

/// Configuration of a [`MultiEventPrefetcher`].
#[derive(Clone, Debug, PartialEq)]
pub struct MultiEventConfig {
    /// Events in lookup-priority order (longest first).
    pub events: Vec<EventKind>,
    /// Entries per event table.
    pub entries_per_table: usize,
    /// Associativity of each table.
    pub ways: usize,
    /// Spatial region geometry.
    pub region: RegionGeometry,
    /// Accumulation-table capacity.
    pub accumulation_entries: usize,
    /// Minimum footprint blocks worth training.
    pub min_footprint_blocks: u32,
}

impl MultiEventConfig {
    /// Default geometry (matching Bingo's paper configuration) with the
    /// given ordered events.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn with_events(events: Vec<EventKind>) -> Self {
        assert!(!events.is_empty(), "need at least one event");
        MultiEventConfig {
            events,
            entries_per_table: 16 * 1024,
            ways: 16,
            region: RegionGeometry::default(),
            accumulation_entries: 64,
            min_footprint_blocks: 2,
        }
    }

    /// A single-event prefetcher (Fig. 2's experimental vehicle).
    pub fn single(kind: EventKind) -> Self {
        Self::with_events(vec![kind])
    }

    /// The first `n` events of the longest-first order (Fig. 3: `n` from 1
    /// to 5).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 5`.
    pub fn first_n(n: usize) -> Self {
        assert!((1..=5).contains(&n), "n must be 1..=5");
        Self::with_events(EventKind::LONGEST_FIRST[..n].to_vec())
    }

    /// Metadata storage in bits of a prefetcher built from this
    /// configuration, computed without allocating any tables. Always equal
    /// to [`Prefetcher::storage_bits`] of the built instance.
    pub fn storage_bits(&self) -> u64 {
        let region_blocks = self.region.blocks_per_region() as u32;
        self.events.len() as u64
            * EventTable::storage_bits_for(self.entries_per_table, region_blocks)
            + AccumulationTable::storage_bits_for(self.accumulation_entries, region_blocks)
    }
}

/// Lookup statistics, including the Fig. 4 redundancy probe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiEventStats {
    /// Trigger accesses that performed a lookup cascade.
    pub lookups: u64,
    /// Hits satisfied by each event, parallel to the configured order.
    pub hits_by_event: Vec<u64>,
    /// Lookups with no match in any table.
    pub no_match: u64,
    /// Lookups where both the first two tables matched.
    pub dual_both_matched: u64,
    /// Lookups where the first two tables offered *identical* predictions —
    /// the paper's definition of metadata redundancy.
    pub dual_identical: u64,
    /// Residencies trained.
    pub trainings: u64,
}

impl MultiEventStats {
    /// Fraction of lookups that produced a prediction.
    pub fn match_probability(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            let hits: u64 = self.hits_by_event.iter().sum();
            hits as f64 / self.lookups as f64
        }
    }

    /// Fig. 4's redundancy: fraction of lookups for which the long and
    /// short tables offered an identical prediction.
    pub fn redundancy(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.dual_identical as f64 / self.lookups as f64
        }
    }
}

/// TAGE-like spatial prefetcher with one history table per event.
#[derive(Debug)]
pub struct MultiEventPrefetcher {
    cfg: MultiEventConfig,
    tables: Vec<EventTable>,
    accumulation: AccumulationTable,
    name: String,
    /// Which cascade level produced the most recent prediction, for
    /// lifecycle telemetry ([`Prefetcher::last_burst_source`]).
    last_source: PrefetchSource,
    /// Whether the most recent access was a trigger, for
    /// [`MultiEventPrefetcher::step`].
    last_trigger: bool,
    /// Effective aggressiveness pushed by the memory system's throttle
    /// controller; [`ThrottleLevel::Full`] unless throttling is enabled.
    throttle: ThrottleLevel,
    /// Lookup statistics.
    pub stats: MultiEventStats,
}

impl MultiEventPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics on invalid table geometry.
    pub fn new(cfg: MultiEventConfig) -> Self {
        let region_blocks = cfg.region.blocks_per_region() as u32;
        let tables = cfg
            .events
            .iter()
            .map(|_| EventTable::new(cfg.entries_per_table, cfg.ways, region_blocks))
            .collect();
        let name = if cfg.events.len() == 1 {
            format!("Single[{}]", cfg.events[0])
        } else {
            format!("MultiEvent[{}]", cfg.events.len())
        };
        MultiEventPrefetcher {
            accumulation: AccumulationTable::new(cfg.accumulation_entries, region_blocks),
            tables,
            name,
            last_source: PrefetchSource::Unattributed,
            last_trigger: false,
            throttle: ThrottleLevel::Full,
            stats: MultiEventStats {
                hits_by_event: vec![0; cfg.events.len()],
                ..Default::default()
            },
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiEventConfig {
        &self.cfg
    }

    /// Feeds one access through the observe/train/predict path and returns
    /// the externally observable outcome — the cascade counterpart of
    /// [`crate::Bingo::step`], driven by the same differential harness.
    pub fn step(&mut self, info: &AccessInfo) -> PredictionStep {
        let mut prefetches = Vec::new();
        self.on_access(info, &mut prefetches);
        PredictionStep {
            trigger: self.last_trigger,
            source: self.last_source,
            prefetches,
        }
    }

    fn train(&mut self, residency: Residency) {
        if residency.footprint.count() < self.cfg.min_footprint_blocks {
            return;
        }
        self.stats.trainings += 1;
        for (kind, table) in self.cfg.events.iter().zip(&mut self.tables) {
            table.insert(residency.key(*kind), residency.footprint);
        }
    }

    fn predict(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        self.stats.lookups += 1;
        // Redundancy probe over the first two tables (when present).
        if self.cfg.events.len() >= 2 {
            let k0 = self.cfg.events[0].key_of(info);
            let k1 = self.cfg.events[1].key_of(info);
            let p0 = self.tables[0].lookup(k0);
            let p1 = self.tables[1].lookup(k1);
            if let (Some(a), Some(b)) = (p0, p1) {
                self.stats.dual_both_matched += 1;
                if a == b {
                    self.stats.dual_identical += 1;
                }
            }
        }
        let mut chosen: Option<(usize, Footprint)> = None;
        for (i, kind) in self.cfg.events.iter().enumerate() {
            let key = kind.key_of(info);
            if let Some(fp) = self.tables[i].lookup(key) {
                chosen = Some((i, fp));
                break;
            }
        }
        let Some((i, fp)) = chosen else {
            self.stats.no_match += 1;
            return;
        };
        self.stats.hits_by_event[i] += 1;
        self.last_source = PrefetchSource::CascadeLevel(i as u8);
        for offset in fp.iter() {
            if offset != info.offset {
                out.push(self.cfg.region.block_at(info.region, offset));
            }
        }
    }
}

impl Prefetcher for MultiEventPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        self.last_source = PrefetchSource::Unattributed;
        let observation = self.accumulation.observe(info);
        self.last_trigger = observation.trigger;
        if let Some(res) = observation.evicted {
            self.train(res);
        }
        if observation.trigger {
            self.predict(info, out);
            // The throttled burst is a strict prefix of the unthrottled
            // one, applied after prediction so table state and recency
            // evolve identically at every level.
            match self.throttle {
                ThrottleLevel::Full => {}
                ThrottleLevel::RaisedVote => out.truncate(out.len().div_ceil(2)),
                ThrottleLevel::TriggerOnly => out.truncate(1),
                ThrottleLevel::Stopped => {
                    out.clear();
                    self.last_source = PrefetchSource::Unattributed;
                }
            }
        }
    }

    fn on_eviction(&mut self, block: BlockAddr) {
        let region = self.cfg.region.region_of(block);
        if let Some(res) = self.accumulation.end_residency(region) {
            self.train(res);
        }
    }

    fn set_throttle_level(&mut self, level: ThrottleLevel) {
        self.throttle = level;
    }

    fn storage_bits(&self) -> u64 {
        self.tables
            .iter()
            .map(EventTable::storage_bits)
            .sum::<u64>()
            + self.accumulation.storage_bits()
    }

    fn metrics(&self) -> Vec<(&'static str, f64)> {
        let hits: u64 = self.stats.hits_by_event.iter().sum();
        vec![
            ("lookups", self.stats.lookups as f64),
            ("matches", hits as f64),
            ("dual_both_matched", self.stats.dual_both_matched as f64),
            ("dual_identical", self.stats.dual_identical as f64),
            ("trainings", self.stats.trainings as f64),
        ]
    }

    fn last_burst_source(&self) -> PrefetchSource {
        self.last_source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{CoreId, Pc};

    fn info(pc: u64, block: u64) -> AccessInfo {
        let g = RegionGeometry::default();
        let b = BlockAddr::new(block);
        AccessInfo {
            core: CoreId(0),
            pc: Pc::new(pc),
            addr: b.base_addr(),
            block: b,
            region: g.region_of(b),
            offset: g.offset_of(b),
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    fn small(events: Vec<EventKind>) -> MultiEventPrefetcher {
        MultiEventPrefetcher::new(MultiEventConfig {
            entries_per_table: 256,
            ways: 4,
            accumulation_entries: 8,
            ..MultiEventConfig::with_events(events)
        })
    }

    fn visit(
        p: &mut MultiEventPrefetcher,
        pc: u64,
        region: u64,
        offsets: &[u32],
    ) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        let mut first = Vec::new();
        for (i, &off) in offsets.iter().enumerate() {
            out.clear();
            p.on_access(&info(pc, region * 32 + off as u64), &mut out);
            if i == 0 {
                first = out.clone();
            }
        }
        p.on_eviction(BlockAddr::new(region * 32 + offsets[0] as u64));
        first
    }

    #[test]
    fn event_table_insert_lookup_and_lru() {
        let mut t = EventTable::new(8, 2, 32);
        let f1 = Footprint::from_bits(1, 32);
        let f2 = Footprint::from_bits(2, 32);
        t.insert(10, f1);
        assert_eq!(t.lookup(10), Some(f1));
        assert_eq!(t.lookup(11), None);
        t.insert(10, f2);
        assert_eq!(t.lookup(10), Some(f2), "retraining replaces");
    }

    #[test]
    fn single_pc_address_never_generalizes() {
        let mut p = small(vec![EventKind::PcAddress]);
        visit(&mut p, 0x400, 10, &[3, 7]);
        // Same region, same trigger: match.
        let got = visit(&mut p, 0x400, 10, &[3]);
        assert_eq!(got.len(), 1);
        // New region: no match ever (the compulsory-miss blindness of
        // PC+Address the paper describes).
        let got = visit(&mut p, 0x400, 50, &[3]);
        assert!(got.is_empty());
        assert_eq!(p.stats.no_match, 2); // first-ever trigger + new region
    }

    #[test]
    fn single_offset_matches_almost_always() {
        let mut p = small(vec![EventKind::Offset]);
        visit(&mut p, 0x400, 10, &[3, 7]);
        // Different PC, different region, same offset: still matches.
        let got = visit(&mut p, 0x999, 50, &[3]);
        assert_eq!(got.len(), 1);
        assert!(p.stats.match_probability() > 0.3);
    }

    #[test]
    fn cascade_prefers_longest_event() {
        let mut p = small(EventKind::LONGEST_FIRST.to_vec());
        visit(&mut p, 0x400, 10, &[3, 7]);
        // Exact revisit: PC+Address (index 0) should win.
        visit(&mut p, 0x400, 10, &[3]);
        assert_eq!(p.stats.hits_by_event[0], 1);
        assert_eq!(p.stats.hits_by_event[1], 0);
        // New region: falls through to PC+Offset (index 1).
        visit(&mut p, 0x400, 60, &[3]);
        assert_eq!(p.stats.hits_by_event[1], 1);
    }

    #[test]
    fn burst_source_reports_cascade_level() {
        let mut p = small(EventKind::LONGEST_FIRST.to_vec());
        assert_eq!(p.last_burst_source(), PrefetchSource::Unattributed);
        visit(&mut p, 0x400, 10, &[3, 7]);
        // Exact revisit: cascade level 0 (PC+Address).
        let mut out = Vec::new();
        p.on_access(&info(0x400, 10 * 32 + 3), &mut out);
        assert!(!out.is_empty());
        assert_eq!(p.last_burst_source(), PrefetchSource::CascadeLevel(0));
        p.on_eviction(BlockAddr::new(10 * 32 + 3));
        // New region: falls through to level 1 (PC+Offset).
        out.clear();
        p.on_access(&info(0x400, 60 * 32 + 3), &mut out);
        assert!(!out.is_empty());
        assert_eq!(p.last_burst_source(), PrefetchSource::CascadeLevel(1));
    }

    #[test]
    fn redundancy_probe_counts_identical_predictions() {
        let mut p = small(vec![EventKind::PcAddress, EventKind::PcOffset]);
        visit(&mut p, 0x400, 10, &[3, 7]);
        // Revisit: both tables trained from the same residency -> identical.
        visit(&mut p, 0x400, 10, &[3]);
        assert_eq!(p.stats.dual_both_matched, 1);
        assert_eq!(p.stats.dual_identical, 1);
        // Retrain the short event from a different region with a different
        // footprint; now long(10) != short prediction.
        visit(&mut p, 0x400, 11, &[3, 9]);
        visit(&mut p, 0x400, 10, &[3]);
        assert_eq!(p.stats.dual_both_matched, 2);
        assert_eq!(p.stats.dual_identical, 1);
        assert!(p.stats.redundancy() < 1.0);
    }

    #[test]
    fn more_events_never_reduce_match_probability() {
        // Train identical histories; the 5-event cascade must match at
        // least as often as the 1-event one.
        let run = |n: usize| {
            let mut p = MultiEventPrefetcher::new(MultiEventConfig {
                entries_per_table: 256,
                ways: 4,
                accumulation_entries: 8,
                ..MultiEventConfig::first_n(n)
            });
            for r in 0..20u64 {
                visit(&mut p, 0x400 + (r % 3) * 4, r, &[(r % 5) as u32, 17]);
            }
            // Probe fresh regions.
            for r in 100..120u64 {
                visit(&mut p, 0x400, r, &[(r % 7) as u32]);
            }
            p.stats.match_probability()
        };
        let one = run(1);
        let five = run(5);
        assert!(
            five >= one,
            "5-event match prob {five} must be >= 1-event {one}"
        );
        assert!(five > 0.5, "5-event cascade should match most lookups");
    }

    #[test]
    fn cascade_takes_first_match_without_voting() {
        // Contrast with Bingo's short-event voting: the cascade replays the
        // first matching table's footprint verbatim, so two conflicting
        // short-event footprints never intersect or union — the most
        // recently trained one simply wins.
        let mut p = small(vec![EventKind::PcOffset]);
        visit(&mut p, 0x400, 10, &[3, 7]);
        visit(&mut p, 0x400, 11, &[3, 9]); // retrains PC+Offset(0x400, 3)
        let got = visit(&mut p, 0x400, 99, &[3]);
        let blocks: Vec<u64> = got.iter().map(|x| x.index()).collect();
        assert_eq!(blocks, vec![99 * 32 + 9], "last training wins outright");
    }

    #[test]
    fn step_reports_trigger_and_cascade_source() {
        let mut p = small(EventKind::LONGEST_FIRST.to_vec());
        let s = p.step(&info(0x400, 10 * 32 + 3));
        assert!(s.trigger);
        assert_eq!(s.source, PrefetchSource::Unattributed);
        assert!(s.prefetches.is_empty());
        let s = p.step(&info(0x400, 10 * 32 + 7));
        assert!(!s.trigger, "second touch of a live residency");
        p.on_eviction(BlockAddr::new(10 * 32 + 3));
        let s = p.step(&info(0x400, 10 * 32 + 3));
        assert!(s.trigger);
        assert_eq!(s.source, PrefetchSource::CascadeLevel(0));
        assert_eq!(s.prefetches, vec![BlockAddr::new(10 * 32 + 7)]);
    }

    #[test]
    fn storage_scales_with_table_count() {
        let one = small(vec![EventKind::PcOffset]).storage_bits();
        let two = small(vec![EventKind::PcAddress, EventKind::PcOffset]).storage_bits();
        assert!(two > one, "two tables must cost more than one");
    }

    #[test]
    fn config_storage_matches_built_prefetcher() {
        for cfg in [
            MultiEventConfig::single(EventKind::PcOffset),
            MultiEventConfig::first_n(3),
            MultiEventConfig {
                entries_per_table: 256,
                ways: 4,
                accumulation_entries: 8,
                ..MultiEventConfig::first_n(2)
            },
        ] {
            let built = MultiEventPrefetcher::new(cfg.clone());
            assert_eq!(cfg.storage_bits(), built.storage_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_event_list_rejected() {
        let _ = MultiEventConfig::with_events(vec![]);
    }

    #[test]
    fn throttled_bursts_are_prefixes_of_unthrottled() {
        let train = |p: &mut MultiEventPrefetcher| {
            visit(p, 0x400, 10, &[3, 7, 9, 11, 13]);
        };
        let mut full = small(EventKind::LONGEST_FIRST.to_vec());
        train(&mut full);
        let unthrottled = visit(&mut full, 0x400, 99, &[3]);
        assert_eq!(unthrottled.len(), 4, "footprint minus trigger");
        for (level, want) in [
            (ThrottleLevel::RaisedVote, 2),
            (ThrottleLevel::TriggerOnly, 1),
            (ThrottleLevel::Stopped, 0),
        ] {
            let mut p = small(EventKind::LONGEST_FIRST.to_vec());
            train(&mut p);
            p.set_throttle_level(level);
            let got = visit(&mut p, 0x400, 99, &[3]);
            assert_eq!(got.len(), want, "{level}");
            assert_eq!(got[..], unthrottled[..want], "must be a prefix");
        }
    }

    #[test]
    fn throttling_never_perturbs_cascade_state() {
        let mut throttled = small(EventKind::LONGEST_FIRST.to_vec());
        let mut clean = small(EventKind::LONGEST_FIRST.to_vec());
        for p in [&mut throttled, &mut clean] {
            visit(p, 0x400, 10, &[3, 7]);
        }
        throttled.set_throttle_level(ThrottleLevel::Stopped);
        assert!(visit(&mut throttled, 0x400, 20, &[3, 5]).is_empty());
        let _ = visit(&mut clean, 0x400, 20, &[3, 5]);
        throttled.set_throttle_level(ThrottleLevel::Full);
        assert_eq!(
            visit(&mut throttled, 0x400, 30, &[3]),
            visit(&mut clean, 0x400, 30, &[3]),
            "tables diverged while throttled"
        );
        assert_eq!(throttled.stats, clean.stats);
    }

    #[test]
    fn first_n_orders_longest_first() {
        let c = MultiEventConfig::first_n(2);
        assert_eq!(c.events, vec![EventKind::PcAddress, EventKind::PcOffset]);
    }
}
