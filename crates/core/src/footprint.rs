//! Page footprints: one bit per cache block of a spatial region.
//!
//! A `1` at position *i* means block *i* of the region was demanded during
//! the region's cache residency. Regions of up to 64 blocks (4 KB with 64 B
//! blocks) are supported, covering all region-size ablations.

use std::fmt;

/// A set of touched blocks within one spatial region.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Footprint {
    bits: u64,
    len: u32,
}

impl Footprint {
    /// Creates an empty footprint for a region of `len` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds 64.
    pub fn empty(len: u32) -> Self {
        assert!((1..=64).contains(&len), "region length {len} out of range");
        Footprint { bits: 0, len }
    }

    /// Creates a footprint from a raw bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `len` is out of range or `bits` has bits above `len`.
    pub fn from_bits(bits: u64, len: u32) -> Self {
        let mut f = Footprint::empty(len);
        assert!(
            len == 64 || bits >> len == 0,
            "bits {bits:#x} exceed region length {len}"
        );
        f.bits = bits;
        f
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of blocks in the region.
    pub fn len(self) -> u32 {
        self.len
    }

    /// Whether no block has been recorded.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Records block `offset` as touched.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= len`.
    pub fn set(&mut self, offset: u32) {
        debug_assert!(
            offset < self.len,
            "offset {offset} >= region length {}",
            self.len
        );
        self.bits |= 1u64 << offset;
    }

    /// Toggles block `offset` (used by fault injection to model a metadata
    /// bit flip: a touched block is forgotten, or a spurious one appears).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len` — even a corrupted footprint must stay
    /// within its region.
    pub fn flip(&mut self, offset: u32) {
        assert!(
            offset < self.len,
            "flip offset {offset} >= region length {}",
            self.len
        );
        self.bits ^= 1u64 << offset;
    }

    /// Whether block `offset` is recorded.
    pub fn contains(self, offset: u32) -> bool {
        offset < self.len && (self.bits >> offset) & 1 == 1
    }

    /// Number of touched blocks.
    pub fn count(self) -> u32 {
        self.bits.count_ones()
    }

    /// Density: touched blocks / region blocks.
    pub fn density(self) -> f64 {
        self.count() as f64 / self.len as f64
    }

    /// Iterates over the touched offsets in ascending order.
    pub fn iter(self) -> Offsets {
        Offsets { bits: self.bits }
    }

    /// Blocks present in both footprints.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on mismatched region lengths.
    pub fn intersect(self, other: Footprint) -> Footprint {
        debug_assert_eq!(self.len, other.len);
        Footprint {
            bits: self.bits & other.bits,
            len: self.len,
        }
    }

    /// Blocks present in either footprint.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on mismatched region lengths.
    pub fn union(self, other: Footprint) -> Footprint {
        debug_assert_eq!(self.len, other.len);
        Footprint {
            bits: self.bits | other.bits,
            len: self.len,
        }
    }

    /// Votes across several footprints: keeps each block present in at
    /// least `ceil(threshold * n)` of the `n` footprints. This is Bingo's
    /// multi-match heuristic with its empirically best threshold of 20 %
    /// (Section IV).
    ///
    /// Returns an empty footprint when `footprints` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]`, or in debug builds on
    /// mismatched region lengths.
    pub fn vote(footprints: &[Footprint], threshold: f64) -> Footprint {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "vote threshold {threshold} must be in (0, 1]"
        );
        let Some(first) = footprints.first() else {
            return Footprint::empty(1);
        };
        let len = first.len;
        let need = (threshold * footprints.len() as f64).ceil() as u32;
        let need = need.max(1);

        // A block is kept when at least `need` of the n footprints contain
        // it. Instead of counting votes one offset at a time, count all 64
        // offsets at once: each footprint is a 1-bit addend across 64
        // lanes, accumulated into bit-sliced counter planes (plane j holds
        // bit j of every lane's running count).
        if need == 1 {
            // Any single vote suffices: the union.
            let mut bits = 0u64;
            for f in footprints {
                debug_assert_eq!(f.len, len);
                bits |= f.bits;
            }
            return Footprint { bits, len };
        }
        if need as usize >= footprints.len() {
            // Unanimity (need can never exceed n since threshold <= 1).
            let mut bits = u64::MAX;
            for f in footprints {
                debug_assert_eq!(f.len, len);
                bits &= f.bits;
            }
            return Footprint {
                bits: if len == 64 {
                    bits
                } else {
                    bits & ((1 << len) - 1)
                },
                len,
            };
        }
        // Planes represent counts 0..2^k-1 exactly, where k is the bit
        // length of `need`; a carry out of the top plane means the lane's
        // count already reached 2^k > need, recorded sticky.
        let k = (32 - need.leading_zeros()) as usize;
        let mut planes = [0u64; 32];
        let mut overflow = 0u64;
        for f in footprints {
            debug_assert_eq!(f.len, len);
            let mut carry = f.bits;
            for plane in planes.iter_mut().take(k) {
                let sum = *plane ^ carry;
                carry &= *plane;
                *plane = sum;
                if carry == 0 {
                    break;
                }
            }
            overflow |= carry;
        }
        // Branch-free per-lane comparison of the k-bit counts against the
        // constant `need`, MSB first: ge collects lanes decided greater,
        // eq tracks lanes still tied.
        let mut ge = 0u64;
        let mut eq = u64::MAX;
        for j in (0..k).rev() {
            let need_bit = if (need >> j) & 1 == 1 { u64::MAX } else { 0 };
            ge |= eq & planes[j] & !need_bit;
            eq &= !(planes[j] ^ need_bit);
        }
        Footprint {
            bits: overflow | ge | eq,
            len,
        }
    }
}

impl fmt::Debug for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Footprint(")?;
        for i in (0..self.len).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = self.len as usize)
    }
}

/// Iterator over the set offsets of a footprint.
#[derive(Copy, Clone, Debug)]
pub struct Offsets {
    bits: u64,
}

impl Iterator for Offsets {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.bits == 0 {
            return None;
        }
        let off = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut f = Footprint::empty(32);
        assert!(f.is_empty());
        f.set(0);
        f.set(31);
        assert!(f.contains(0));
        assert!(f.contains(31));
        assert!(!f.contains(15));
        assert_eq!(f.count(), 2);
    }

    #[test]
    fn iter_yields_ascending_offsets() {
        let f = Footprint::from_bits(0b1010_0110, 8);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 2, 5, 7]);
    }

    #[test]
    fn density() {
        let f = Footprint::from_bits(0b1111, 16);
        assert!((f.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn union_and_intersect() {
        let a = Footprint::from_bits(0b1100, 8);
        let b = Footprint::from_bits(0b0110, 8);
        assert_eq!(a.union(b).bits(), 0b1110);
        assert_eq!(a.intersect(b).bits(), 0b0100);
    }

    #[test]
    fn vote_20_percent_of_five_needs_one() {
        // 20% of 5 footprints = exactly 1 vote needed.
        let fs = [
            Footprint::from_bits(0b00001, 8),
            Footprint::from_bits(0b00010, 8),
            Footprint::from_bits(0b00100, 8),
            Footprint::from_bits(0b01000, 8),
            Footprint::from_bits(0b10000, 8),
        ];
        assert_eq!(Footprint::vote(&fs, 0.2).bits(), 0b11111);
    }

    #[test]
    fn vote_majority() {
        let fs = [
            Footprint::from_bits(0b011, 8),
            Footprint::from_bits(0b010, 8),
            Footprint::from_bits(0b110, 8),
        ];
        // 50% of 3 -> need ceil(1.5) = 2 votes.
        assert_eq!(Footprint::vote(&fs, 0.5).bits(), 0b010 | 0b010); // bit1=3 votes, bit0=1, bit2=1
        assert_eq!(Footprint::vote(&fs, 0.5).bits(), 0b010);
        // Unanimous.
        assert_eq!(Footprint::vote(&fs, 1.0).bits(), 0b010);
    }

    #[test]
    fn vote_single_footprint_is_identity() {
        let f = Footprint::from_bits(0b1011, 8);
        assert_eq!(Footprint::vote(&[f], 0.2), f);
        assert_eq!(Footprint::vote(&[f], 1.0), f);
    }

    #[test]
    fn vote_exactly_at_threshold_is_kept() {
        // 20% of 10 footprints = exactly 2 votes needed; a block with
        // exactly 2 votes survives and one with 1 vote does not. This is
        // the >= boundary: "at least 20%", not "more than 20%".
        let mut fs = vec![
            Footprint::from_bits(0b011, 8),
            Footprint::from_bits(0b001, 8),
        ];
        fs.extend(std::iter::repeat_n(Footprint::from_bits(0b100, 8), 8));
        assert_eq!(fs.len(), 10);
        let v = Footprint::vote(&fs, 0.2);
        assert!(v.contains(0), "bit0 has exactly 2/10 votes: at threshold");
        assert!(!v.contains(1), "bit1 has 1/10 votes: below threshold");
        assert!(v.contains(2), "bit2 has 8/10 votes: above threshold");
    }

    #[test]
    fn vote_need_rounds_up_between_integers() {
        // 20% of 6 = 1.2 -> ceil to 2: a single vote is no longer enough
        // the moment n crosses the 1/threshold boundary.
        let fs = [
            Footprint::from_bits(0b01, 8),
            Footprint::from_bits(0b10, 8),
            Footprint::from_bits(0b10, 8),
            Footprint::from_bits(0b00, 8),
            Footprint::from_bits(0b00, 8),
            Footprint::from_bits(0b00, 8),
        ];
        let v = Footprint::vote(&fs, 0.2);
        assert!(!v.contains(0), "1/6 votes < ceil(1.2) = 2");
        assert!(v.contains(1), "2/6 votes == ceil(1.2) = 2");
    }

    #[test]
    fn vote_over_all_empty_footprints_is_empty() {
        let fs = [Footprint::empty(8); 5];
        assert!(Footprint::vote(&fs, 0.2).is_empty());
        assert!(Footprint::vote(&fs, 1.0).is_empty());
    }

    #[test]
    fn vote_threshold_one_requires_unanimity() {
        let fs = [Footprint::from_bits(0b11, 8), Footprint::from_bits(0b01, 8)];
        assert_eq!(Footprint::vote(&fs, 1.0).bits(), 0b01);
    }

    #[test]
    fn vote_empty_slice_is_empty() {
        assert!(Footprint::vote(&[], 0.2).is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn vote_rejects_zero_threshold() {
        let _ = Footprint::vote(&[Footprint::empty(8)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn empty_rejects_oversized_region() {
        let _ = Footprint::empty(65);
    }

    #[test]
    #[should_panic(expected = "exceed region length")]
    fn from_bits_rejects_overflow() {
        let _ = Footprint::from_bits(0b1_0000, 4);
    }

    #[test]
    fn full_64_block_region_works() {
        let mut f = Footprint::empty(64);
        f.set(63);
        assert!(f.contains(63));
        assert_eq!(Footprint::from_bits(u64::MAX, 64).count(), 64);
    }

    /// Word-boundary bits of a 4 KiB region (64 blocks): offset 63 is the
    /// top bit of the backing u64 — shifts there are where an off-by-one
    /// or a signed shift would corrupt the footprint.
    #[test]
    fn word_boundary_offsets_in_4kib_region() {
        let mut f = Footprint::empty(64);
        f.set(0);
        f.set(63);
        assert_eq!(f.bits(), 1 | (1 << 63));
        assert_eq!(f.count(), 2);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![0, 63]);
        f.flip(63);
        assert!(!f.contains(63), "flip clears the top bit");
        assert!(f.contains(0));
        // `contains` beyond the region is false, never a shift panic.
        assert!(!Footprint::from_bits(u64::MAX, 64).contains(64));
    }

    /// The smallest ablation width: a 128 B region is 2 blocks. Set,
    /// union, and vote must all respect the 2-bit mask.
    #[test]
    fn narrow_128b_region_ops() {
        let mut a = Footprint::empty(2);
        a.set(1);
        let b = Footprint::from_bits(0b01, 2);
        assert_eq!(a.union(b).bits(), 0b11);
        assert_eq!(a.intersect(b).bits(), 0);
        assert_eq!(a.union(b).density(), 1.0);
        // Unanimity at len 2 must mask the u64::MAX accumulator down to
        // the region width.
        let v = Footprint::vote(&[a.union(b), a.union(b)], 1.0);
        assert_eq!(v.bits(), 0b11);
        assert_eq!(v.len(), 2);
    }

    /// Per-offset counting reference for `vote`: the obvious
    /// collection-based implementation the bit-sliced version replaced.
    fn vote_reference(footprints: &[Footprint], threshold: f64) -> Footprint {
        let Some(first) = footprints.first() else {
            return Footprint::empty(1);
        };
        let need = ((threshold * footprints.len() as f64).ceil() as u32).max(1);
        let mut out = Footprint::empty(first.len());
        for off in 0..first.len() {
            let votes = footprints.iter().filter(|f| f.contains(off)).count() as u32;
            if votes >= need {
                out.set(off);
            }
        }
        out
    }

    /// The bit-sliced counter-plane vote must agree with the per-offset
    /// reference on random footprints across region widths (128 B .. 4
    /// KiB), pool sizes (through the sticky-overflow path), and
    /// thresholds (union, majority, unanimity shortcuts included).
    #[test]
    fn vote_matches_counting_reference_on_random_footprints() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &len in &[2u32, 8, 31, 32, 33, 63, 64] {
            let mask = if len == 64 { u64::MAX } else { (1 << len) - 1 };
            for &n in &[1usize, 2, 3, 5, 16, 33, 64] {
                let fs: Vec<Footprint> = (0..n)
                    .map(|_| Footprint::from_bits(next() & mask, len))
                    .collect();
                for &threshold in &[0.01, 0.2, 0.5, 0.8, 1.0] {
                    let fast = Footprint::vote(&fs, threshold);
                    let slow = vote_reference(&fs, threshold);
                    assert_eq!(
                        fast, slow,
                        "vote diverged: len {len}, n {n}, threshold {threshold}"
                    );
                }
            }
        }
    }

    #[test]
    fn flip_toggles_bits() {
        let mut f = Footprint::from_bits(0b0101, 8);
        f.flip(0);
        assert_eq!(f.bits(), 0b0100);
        f.flip(3);
        assert_eq!(f.bits(), 0b1100);
        f.flip(3);
        assert_eq!(f.bits(), 0b0100);
    }

    #[test]
    #[should_panic(expected = "flip offset")]
    fn flip_rejects_out_of_range() {
        let mut f = Footprint::empty(8);
        f.flip(8);
    }

    #[test]
    fn display_formats_binary() {
        let f = Footprint::from_bits(0b101, 4);
        assert_eq!(format!("{f}"), "0101");
        assert_eq!(format!("{f:?}"), "Footprint(0101)");
    }
}
