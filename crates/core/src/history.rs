//! The unified history table — the storage contribution of the paper
//! (Section IV, Fig. 5).
//!
//! A naive TAGE-like design would keep one table per event. Bingo's insight
//! is that *short events are carried in long events*: knowing `PC+Address`
//! implies knowing `PC+Offset`. The unified table therefore stores each
//! footprint **once**, associated with the longest event, but remains
//! searchable by both events:
//!
//! * the table is **indexed** by a hash of the *shortest* event
//!   (`PC+Offset`), so the long and the short lookup land in the same set;
//! * each entry is **tagged** with the *longest* event (`PC+Address`); a
//!   short lookup simply compares only the short event's portion of the tag.
//!
//! A long lookup matches at most one way. A short lookup may match several
//! ways — multiple footprints whose triggers shared `PC+Offset` but had
//! different addresses — and the caller combines them by voting
//! ([`crate::footprint::Footprint::vote`]).

use crate::footprint::Footprint;

/// The single, set-associative history table of Bingo.
///
/// Stored structure-of-arrays: the tag scans that dominate every lookup
/// walk dense `u64` slices (set *s* occupies indices `s*ways ..
/// (s+1)*ways`), and the footprint/recency columns are touched only on a
/// match. Invalid entries carry zeroed tags and a zero recency stamp;
/// validity is tracked explicitly so a genuine zero tag cannot alias.
#[derive(Debug)]
pub struct UnifiedHistoryTable {
    valid: Vec<bool>,
    /// Full tags: the longest event (`PC+Address`).
    long_tags: Vec<u64>,
    /// The short portion of each tag (`PC+Offset`); physically a subset of
    /// the long event's bits, stored separately here for clarity.
    short_tags: Vec<u64>,
    footprints: Vec<Footprint>,
    last_touch: Vec<u64>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    region_blocks: u32,
    /// Reusable `(previous stamp, footprint)` buffer for
    /// [`UnifiedHistoryTable::lookup_short`], so the hot path never
    /// allocates.
    scratch: Vec<(u64, Footprint)>,
}

/// Statistics helpers returned by [`UnifiedHistoryTable::lookup_short`].
pub type ShortMatches = Vec<Footprint>;

impl UnifiedHistoryTable {
    /// Creates a table with `entries` total entries and `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways` yielding a
    /// power-of-two set count, or if `region_blocks` is out of `1..=64`.
    pub fn new(entries: usize, ways: usize, region_blocks: u32) -> Self {
        assert!(ways > 0 && entries >= ways, "invalid geometry");
        assert!(
            (1..=64).contains(&region_blocks),
            "region blocks {region_blocks} out of range"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two() && sets * ways == entries,
            "entries {entries} / ways {ways} must give a power-of-two set count"
        );
        UnifiedHistoryTable {
            valid: vec![false; entries],
            long_tags: vec![0; entries],
            short_tags: vec![0; entries],
            footprints: vec![Footprint::empty(region_blocks); entries],
            last_touch: vec![0; entries],
            ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
            region_blocks,
            scratch: Vec::with_capacity(ways),
        }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.valid.len()
    }

    fn set_of(&self, short_key: u64) -> usize {
        (short_key & self.set_mask) as usize
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Inserts (or re-trains) the footprint observed after the given long
    /// event. The set is chosen by the short event's hash; the victim, when
    /// the set is full, is the LRU entry.
    pub fn insert(&mut self, long_key: u64, short_key: u64, footprint: Footprint) {
        debug_assert_eq!(footprint.len(), self.region_blocks);
        bingo_sim::audit_assert!(
            footprint.len() == self.region_blocks && footprint.count() <= self.region_blocks,
            "footprint geometry invariant: {} set bits in a {}-block footprint \
             stored into a {}-block-region table",
            footprint.count(),
            footprint.len(),
            self.region_blocks
        );
        let stamp = self.next_stamp();
        let base = self.set_of(short_key) * self.ways;
        let end = base + self.ways;
        // Re-train an existing entry for the same long event.
        let mut slot = None;
        let mut lru = base;
        let mut lru_touch = u64::MAX;
        for i in base..end {
            if !self.valid[i] {
                if slot.is_none() {
                    slot = Some(i);
                }
                continue;
            }
            if self.long_tags[i] == long_key {
                self.footprints[i] = footprint;
                self.short_tags[i] = short_key;
                self.last_touch[i] = stamp;
                return;
            }
            if self.last_touch[i] < lru_touch {
                lru_touch = self.last_touch[i];
                lru = i;
            }
        }
        let slot = slot.unwrap_or(lru);
        self.valid[slot] = true;
        self.long_tags[slot] = long_key;
        self.short_tags[slot] = short_key;
        self.footprints[slot] = footprint;
        self.last_touch[slot] = stamp;
    }

    /// Looks up with the long event (all tag bits compared). At most one
    /// entry can match; recency is updated on a hit.
    pub fn lookup_long(&mut self, long_key: u64, short_key: u64) -> Option<Footprint> {
        let stamp = self.next_stamp();
        let base = self.set_of(short_key) * self.ways;
        for i in base..base + self.ways {
            if self.long_tags[i] == long_key && self.valid[i] {
                self.last_touch[i] = stamp;
                return Some(self.footprints[i]);
            }
        }
        None
    }

    /// Looks up with the short event only (the gray path of Fig. 5): every
    /// way whose short-tag portion matches contributes its footprint.
    /// Matches are returned most-recent-first; recency is updated.
    pub fn lookup_short(&mut self, short_key: u64, out: &mut ShortMatches) {
        out.clear();
        let stamp = self.next_stamp();
        let base = self.set_of(short_key) * self.ways;
        self.scratch.clear();
        for i in base..base + self.ways {
            if self.short_tags[i] == short_key && self.valid[i] {
                self.scratch.push((self.last_touch[i], self.footprints[i]));
                self.last_touch[i] = stamp;
            }
        }
        // Previous stamps are unique (every touch draws a fresh stamp), so
        // this unstable sort orders matches exactly as the stable
        // most-recent-first sort always has.
        self.scratch
            .sort_unstable_by_key(|m| std::cmp::Reverse(m.0));
        out.extend(self.scratch.iter().map(|&(_, f)| f));
    }

    /// Invalidates one valid entry chosen by `pick` (a value used modulo
    /// the number of valid entries), returning whether anything was
    /// dropped. Models metadata loss for fault-injection experiments: the
    /// prefetcher behaves exactly as if the entry had been evicted.
    pub fn evict_entry(&mut self, pick: u64) -> bool {
        let valid = self.valid_entries();
        if valid == 0 {
            return false;
        }
        let mut target = (pick % valid as u64) as usize;
        for i in 0..self.valid.len() {
            if self.valid[i] {
                if target == 0 {
                    self.valid[i] = false;
                    self.long_tags[i] = 0;
                    self.short_tags[i] = 0;
                    self.footprints[i] = Footprint::empty(self.region_blocks);
                    self.last_touch[i] = 0;
                    return true;
                }
                target -= 1;
            }
        }
        unreachable!("target was chosen modulo the valid-entry count");
    }

    /// Number of valid entries (diagnostics).
    pub fn valid_entries(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }

    /// Storage in bits. Mirrors the paper's accounting (Section VI-A: a
    /// 16 K-entry table totals 119 KB): per entry the footprint
    /// (one bit per region block), the `PC+Address` tag beyond the index
    /// bits (modeled at 16 PC bits + 6 offset bits + 1 valid), and 4
    /// replacement bits.
    pub fn storage_bits(&self) -> u64 {
        Self::storage_bits_for(self.entries(), self.region_blocks)
    }

    /// [`UnifiedHistoryTable::storage_bits`] computed from the geometry
    /// alone, without allocating the table.
    pub fn storage_bits_for(entries: usize, region_blocks: u32) -> u64 {
        let tag_bits = 16 + 6 + 1;
        let per_entry = region_blocks as u64 + tag_bits + 4;
        entries as u64 * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(bits: u64) -> Footprint {
        Footprint::from_bits(bits, 32)
    }

    fn table() -> UnifiedHistoryTable {
        UnifiedHistoryTable::new(64, 4, 32)
    }

    #[test]
    fn long_lookup_finds_exact_entry() {
        let mut t = table();
        t.insert(100, 7, fp(0b1010));
        assert_eq!(t.lookup_long(100, 7), Some(fp(0b1010)));
        assert_eq!(t.lookup_long(101, 7), None);
    }

    #[test]
    fn short_lookup_finds_all_matching_ways() {
        let mut t = table();
        // Three different long events sharing short key 7 -> same set.
        t.insert(100, 7, fp(0b0001));
        t.insert(200, 7, fp(0b0010));
        t.insert(300, 7, fp(0b0100));
        let mut out = Vec::new();
        t.lookup_short(7, &mut out);
        assert_eq!(out.len(), 3);
        let union = out.iter().fold(Footprint::empty(32), |a, b| a.union(*b));
        assert_eq!(union.bits(), 0b0111);
    }

    #[test]
    fn short_lookup_returns_most_recent_first() {
        let mut t = table();
        t.insert(100, 7, fp(0b0001));
        t.insert(200, 7, fp(0b0010));
        // Touch the first entry to make it most recent.
        let _ = t.lookup_long(100, 7);
        let mut out = Vec::new();
        t.lookup_short(7, &mut out);
        assert_eq!(out[0], fp(0b0001));
        assert_eq!(out[1], fp(0b0010));
    }

    #[test]
    fn insert_retrains_existing_long_event() {
        let mut t = table();
        t.insert(100, 7, fp(0b0001));
        t.insert(100, 7, fp(0b1000));
        assert_eq!(t.valid_entries(), 1, "retraining must not duplicate");
        assert_eq!(t.lookup_long(100, 7), Some(fp(0b1000)));
    }

    #[test]
    fn redundancy_is_eliminated_by_construction() {
        // The same footprint trained under the same long event occupies one
        // entry regardless of how many times it is stored — the unified
        // table's whole point (vs. one entry in each of two tables).
        let mut t = table();
        for _ in 0..10 {
            t.insert(100, 7, fp(0b0110));
        }
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = UnifiedHistoryTable::new(8, 2, 32); // 4 sets x 2 ways
                                                        // Force all into the set selected by short key 0 (set 0): keys 0, 4, 8.
        t.insert(1, 0, fp(1));
        t.insert(2, 4, fp(2));
        let _ = t.lookup_long(1, 0); // make long=1 most recent
        t.insert(3, 8, fp(4)); // evicts long=2
        assert_eq!(t.lookup_long(1, 0), Some(fp(1)));
        assert_eq!(t.lookup_long(2, 4), None);
        assert_eq!(t.lookup_long(3, 8), Some(fp(4)));
    }

    #[test]
    fn long_and_short_land_in_same_set() {
        // Insert via short key; a long lookup with that short key must find
        // it even though the long tag alone says nothing about the set.
        let mut t = UnifiedHistoryTable::new(1024, 16, 32);
        t.insert(0xdeadbeef, 0x1234, fp(0b11));
        assert_eq!(t.lookup_long(0xdeadbeef, 0x1234), Some(fp(0b11)));
        let mut out = Vec::new();
        t.lookup_short(0x1234, &mut out);
        assert_eq!(out, vec![fp(0b11)]);
    }

    #[test]
    fn storage_matches_paper_119kb_at_16k_entries() {
        let t = UnifiedHistoryTable::new(16 * 1024, 16, 32);
        let kb = t.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (kb - 118.0).abs() < 6.0,
            "16K-entry table is {kb:.1} KB; the paper reports 119 KB"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_rejected() {
        let _ = UnifiedHistoryTable::new(48, 16, 32);
    }

    #[test]
    fn evict_entry_drops_exactly_one() {
        let mut t = table();
        t.insert(1, 1, fp(1));
        t.insert(2, 2, fp(2));
        t.insert(3, 3, fp(4));
        assert!(t.evict_entry(7));
        assert_eq!(t.valid_entries(), 2);
        assert!(t.evict_entry(0));
        assert!(t.evict_entry(0));
        assert_eq!(t.valid_entries(), 0);
        assert!(!t.evict_entry(0), "empty table has nothing to drop");
    }

    #[test]
    fn valid_entries_counts() {
        let mut t = table();
        assert_eq!(t.valid_entries(), 0);
        t.insert(1, 1, fp(1));
        t.insert(2, 2, fp(2));
        assert_eq!(t.valid_entries(), 2);
    }

    #[test]
    fn retraining_one_alias_leaves_other_aliases_intact() {
        // Two long events aliasing on the same short key (the hash-index
        // collision the unified table is designed around). Retraining one
        // must not disturb the other's footprint or entry.
        let mut t = table();
        t.insert(100, 7, fp(0b0001));
        t.insert(200, 7, fp(0b0010));
        t.insert(100, 7, fp(0b1000)); // retrain the first alias
        assert_eq!(t.valid_entries(), 2, "retraining must not duplicate");
        assert_eq!(t.lookup_long(100, 7), Some(fp(0b1000)));
        assert_eq!(t.lookup_long(200, 7), Some(fp(0b0010)));
    }

    #[test]
    fn short_lookup_ignores_different_short_key_in_same_set() {
        // Keys 3 and 3+4 land in the same set of a 4-set table but carry
        // different short tags; a short lookup must separate them even
        // though a naive index-only match would conflate them.
        let mut t = UnifiedHistoryTable::new(8, 2, 32); // 4 sets x 2 ways
        t.insert(100, 3, fp(0b01));
        t.insert(200, 3 + 4, fp(0b10));
        let mut out = Vec::new();
        t.lookup_short(3, &mut out);
        assert_eq!(out, vec![fp(0b01)]);
        t.lookup_short(3 + 4, &mut out);
        assert_eq!(out, vec![fp(0b10)]);
    }

    #[test]
    fn full_set_of_aliases_evicts_least_recent_alias() {
        // A 2-way set completely filled with short-key aliases: inserting a
        // third alias must evict the LRU one, and the surviving pair must
        // be exactly {most recently touched, newcomer}.
        let mut t = UnifiedHistoryTable::new(8, 2, 32);
        t.insert(100, 7, fp(0b001)); // older
        t.insert(200, 7, fp(0b010)); // newer
        let _ = t.lookup_long(100, 7); // now 100 is most recent
        t.insert(300, 7, fp(0b100)); // must evict 200
        assert_eq!(t.valid_entries(), 2);
        assert_eq!(t.lookup_long(200, 7), None, "LRU alias evicted");
        assert_eq!(t.lookup_long(100, 7), Some(fp(0b001)));
        assert_eq!(t.lookup_long(300, 7), Some(fp(0b100)));
    }

    #[test]
    fn short_touch_protects_all_aliases_from_eviction() {
        // lookup_short touches every matching way, so a mixed set evicts
        // the non-matching entry first even if it was inserted later.
        let mut t = UnifiedHistoryTable::new(8, 2, 32);
        t.insert(100, 3, fp(0b01)); // alias of short key 3
        t.insert(900, 7, fp(0b10)); // same set (7 & 3 == 3), different short
        let mut out = Vec::new();
        t.lookup_short(3, &mut out); // touches only the alias of key 3
        assert_eq!(out.len(), 1);
        t.insert(300, 3, fp(0b11)); // set full: LRU is now the key-7 entry
        assert_eq!(t.lookup_long(900, 7), None, "untouched entry evicted");
        assert_eq!(t.lookup_long(100, 3), Some(fp(0b01)));
        assert_eq!(t.lookup_long(300, 3), Some(fp(0b11)));
    }

    #[test]
    fn eviction_order_cycles_through_insertion_order_when_untouched() {
        // With no intervening lookups, successive inserts into a full set
        // evict strictly in insertion order (stamps are the LRU order).
        let mut t = UnifiedHistoryTable::new(8, 2, 32);
        t.insert(1, 0, fp(0b001));
        t.insert(2, 4, fp(0b010));
        t.insert(3, 8, fp(0b100)); // evicts 1
        assert_eq!(t.lookup_long(1, 0), None);
        // That lookup_long miss did not touch anything; 2 is still LRU.
        t.insert(4, 12, fp(0b110)); // evicts 2
        assert_eq!(t.lookup_long(2, 4), None);
        assert_eq!(t.lookup_long(3, 8), Some(fp(0b100)));
        assert_eq!(t.lookup_long(4, 12), Some(fp(0b110)));
    }
}
