//! Offline spatial-correlation analysis.
//!
//! The motivation figures of the paper (Figs. 2–4) are statements about
//! *workload structure*: how often each trigger event recurs, and how
//! similar a region's footprint is to the footprint last seen for the same
//! event. This module measures those properties directly from an access
//! stream, independent of any prefetcher or timing model — useful for
//! validating that a workload (synthetic or traced) actually carries the
//! spatial correlation a prefetcher is supposed to exploit.
//!
//! Feed accesses through [`SpatialProfiler::observe`]; a region's
//! *residency* ends when more than [`SpatialProfiler::window`] other
//! regions have been touched since its last access (an offline analogue of
//! cache residency). [`SpatialProfiler::finish`] closes everything and
//! returns the [`SpatialReport`].

use std::collections::HashMap;
use std::collections::VecDeque;

use bingo_sim::{AccessInfo, RegionId};

use crate::event::EventKind;
use crate::footprint::Footprint;

/// Statistics for one event heuristic.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct EventProfile {
    /// Completed residencies whose trigger key had been seen before.
    pub matches: u64,
    /// Total completed residencies (lookups).
    pub lookups: u64,
    /// Sum over matches of the Jaccard similarity between the residency's
    /// footprint and the previous footprint stored for the same key.
    pub jaccard_sum: f64,
}

impl EventProfile {
    /// Fraction of residencies whose event key recurred.
    pub fn match_probability(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.matches as f64 / self.lookups as f64
        }
    }

    /// Mean footprint similarity on a match — an upper-bound proxy for the
    /// accuracy a prefetcher keyed by this event could reach.
    pub fn mean_similarity(&self) -> f64 {
        if self.matches == 0 {
            0.0
        } else {
            self.jaccard_sum / self.matches as f64
        }
    }
}

/// The complete analysis of an access stream.
#[derive(Clone, Debug, Default)]
pub struct SpatialReport {
    /// Per-event statistics, indexed as [`EventKind::LONGEST_FIRST`].
    pub events: [EventProfile; 5],
    /// Completed residencies.
    pub residencies: u64,
    /// Total accesses observed.
    pub accesses: u64,
    /// Histogram of footprint densities in eight 12.5 %-wide buckets.
    pub density_histogram: [u64; 8],
    /// Sum of footprint densities (for the mean).
    density_sum: f64,
}

impl SpatialReport {
    /// Mean footprint density over completed residencies.
    pub fn mean_density(&self) -> f64 {
        if self.residencies == 0 {
            0.0
        } else {
            self.density_sum / self.residencies as f64
        }
    }

    /// The profile for a specific event kind.
    pub fn event(&self, kind: EventKind) -> &EventProfile {
        let idx = EventKind::LONGEST_FIRST
            .iter()
            .position(|k| *k == kind)
            .expect("all kinds are in LONGEST_FIRST");
        &self.events[idx]
    }
}

fn jaccard(a: Footprint, b: Footprint) -> f64 {
    let union = a.union(b).count();
    if union == 0 {
        1.0
    } else {
        a.intersect(b).count() as f64 / union as f64
    }
}

struct OpenRegion {
    trigger_pc: u64,
    trigger_block: u64,
    trigger_offset: u32,
    footprint: Footprint,
}

/// Streaming analyzer of spatial structure.
pub struct SpatialProfiler {
    region_blocks: u32,
    window: usize,
    open: HashMap<u64, OpenRegion>,
    /// Distinct-region LRU used to close idle residencies.
    recency: VecDeque<u64>,
    last_footprint: [HashMap<u64, Footprint>; 5],
    report: SpatialReport,
}

impl std::fmt::Debug for SpatialProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpatialProfiler")
            .field("open_regions", &self.open.len())
            .field("residencies", &self.report.residencies)
            .finish()
    }
}

impl SpatialProfiler {
    /// Creates a profiler for regions of `region_blocks` blocks, closing a
    /// residency once `window` other distinct regions have been touched
    /// since its last access.
    ///
    /// # Panics
    ///
    /// Panics if `region_blocks` is out of `1..=64` or `window` is zero.
    pub fn new(region_blocks: u32, window: usize) -> Self {
        assert!((1..=64).contains(&region_blocks));
        assert!(window > 0, "window must be nonzero");
        SpatialProfiler {
            region_blocks,
            window,
            open: HashMap::new(),
            recency: VecDeque::new(),
            last_footprint: Default::default(),
            report: SpatialReport::default(),
        }
    }

    /// The residency window (distinct regions).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Observes one access.
    pub fn observe(&mut self, info: &AccessInfo) {
        self.report.accesses += 1;
        let region = info.region.raw();
        match self.open.get_mut(&region) {
            Some(open) => {
                open.footprint.set(info.offset);
            }
            None => {
                let mut footprint = Footprint::empty(self.region_blocks);
                footprint.set(info.offset);
                self.open.insert(
                    region,
                    OpenRegion {
                        trigger_pc: info.pc.raw(),
                        trigger_block: info.block.index(),
                        trigger_offset: info.offset,
                        footprint,
                    },
                );
            }
        }
        // Refresh recency; close regions that fell out of the window.
        if let Some(pos) = self.recency.iter().position(|&r| r == region) {
            self.recency.remove(pos);
        }
        self.recency.push_back(region);
        while self.recency.len() > self.window {
            let idle = self.recency.pop_front().expect("window overflow");
            self.close(idle);
        }
    }

    fn close(&mut self, region: u64) {
        let Some(open) = self.open.remove(&region) else {
            return;
        };
        self.report.residencies += 1;
        let density = open.footprint.density();
        self.report.density_sum += density;
        let bucket = ((density * 8.0) as usize).min(7);
        self.report.density_histogram[bucket] += 1;
        for (i, kind) in EventKind::LONGEST_FIRST.iter().enumerate() {
            let key = kind.key_parts(
                open.trigger_pc,
                open.trigger_block,
                open.trigger_offset as u64,
            );
            let profile = &mut self.report.events[i];
            profile.lookups += 1;
            if let Some(prev) = self.last_footprint[i].get(&key) {
                profile.matches += 1;
                profile.jaccard_sum += jaccard(open.footprint, *prev);
            }
            self.last_footprint[i].insert(key, open.footprint);
        }
    }

    /// Closes all open residencies and returns the report.
    pub fn finish(mut self) -> SpatialReport {
        let remaining: Vec<u64> = self.recency.iter().copied().collect();
        for region in remaining {
            self.close(region);
        }
        self.report
    }

    /// Convenience: analyzes `RegionId`-less raw parts (pc, block index),
    /// deriving region/offset from this profiler's geometry.
    pub fn observe_parts(&mut self, pc: u64, block: u64) {
        let region = block / self.region_blocks as u64;
        let offset = (block % self.region_blocks as u64) as u32;
        let info = AccessInfo {
            core: bingo_sim::CoreId(0),
            pc: bingo_sim::Pc::new(pc),
            addr: bingo_sim::BlockAddr::new(block).base_addr(),
            block: bingo_sim::BlockAddr::new(block),
            region: RegionId::new(region),
            offset,
            is_write: false,
            hit: false,
            cycle: 0,
        };
        self.observe(&info);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurring_pattern_yields_high_similarity() {
        let mut p = SpatialProfiler::new(32, 4);
        // Two visits to different regions, same PC, same offsets {0,1,2}:
        // PC+Offset should match on the second with Jaccard 1.0.
        for region in [10u64, 20] {
            for off in [0u64, 1, 2] {
                p.observe_parts(0x400, region * 32 + off);
            }
            // Touch filler regions to close the window.
            for filler in 0..4u64 {
                p.observe_parts(0x999, (100 + region * 10 + filler) * 32);
            }
        }
        let r = p.finish();
        let pc_offset = r.event(EventKind::PcOffset);
        assert!(pc_offset.matches >= 1);
        assert!(
            pc_offset.mean_similarity() > 0.99,
            "identical recurring patterns, got {}",
            pc_offset.mean_similarity()
        );
    }

    #[test]
    fn unrelated_patterns_yield_low_similarity() {
        let mut p = SpatialProfiler::new(32, 2);
        // Same PC+Offset trigger, disjoint footprints.
        for (region, offs) in [(1u64, [0u64, 5, 6]), (2, [0, 20, 21])] {
            for off in offs {
                p.observe_parts(0x400, region * 32 + off);
            }
            for filler in 0..3u64 {
                // Unique filler PCs so the fillers never match each other.
                p.observe_parts(
                    0x9000 + region * 100 + filler * 4,
                    (50 + region * 10 + filler) * 32,
                );
            }
        }
        let r = p.finish();
        let pc_offset = r.event(EventKind::PcOffset);
        assert_eq!(pc_offset.matches, 1);
        assert!(
            pc_offset.mean_similarity() < 0.5,
            "disjoint patterns, got {}",
            pc_offset.mean_similarity()
        );
    }

    #[test]
    fn pc_address_only_matches_exact_revisits() {
        let mut p = SpatialProfiler::new(32, 2);
        // Same PC, different regions: PC+Address never matches; PC does.
        for region in 1..=5u64 {
            p.observe_parts(0x400, region * 32);
            p.observe_parts(0x400, region * 32 + 1);
            for filler in 0..3u64 {
                p.observe_parts(0x999, (100 + region * 10 + filler) * 32);
            }
        }
        let r = p.finish();
        assert_eq!(r.event(EventKind::PcAddress).matches, 0);
        assert!(r.event(EventKind::Pc).matches >= 4);
    }

    #[test]
    fn density_statistics() {
        let mut p = SpatialProfiler::new(32, 1);
        // One region with 16/32 blocks = 0.5 density.
        for off in 0..16u64 {
            p.observe_parts(0x1, off);
        }
        let r = p.finish();
        assert_eq!(r.residencies, 1);
        assert!((r.mean_density() - 0.5).abs() < 1e-9);
        assert_eq!(r.density_histogram[4], 1);
    }

    #[test]
    fn window_closes_idle_regions() {
        let mut p = SpatialProfiler::new(32, 2);
        p.observe_parts(0x1, 0); // region 0
        p.observe_parts(0x1, 32); // region 1
        p.observe_parts(0x1, 64); // region 2 -> closes region 0
        p.observe_parts(0x1, 1); // region 0 again: NEW residency
        let r = p.finish();
        assert_eq!(r.residencies, 4, "region 0 must appear twice");
    }

    #[test]
    fn jaccard_edge_cases() {
        let a = Footprint::from_bits(0b1111, 32);
        assert!((jaccard(a, a) - 1.0).abs() < 1e-12);
        let b = Footprint::from_bits(0b110000, 32);
        assert_eq!(jaccard(a, b), 0.0);
    }
}
