//! Structural tests of the workload generators: the statistical properties
//! the reproduction depends on (run-structured footprints, chain
//! discipline, PC/page keying) hold for the streams actually emitted.

use std::collections::HashMap;

use bingo_sim::{Instr, InstrSource};
use bingo_workloads::Workload;

/// Drains `n` memory accesses from a source.
fn accesses(src: &mut dyn InstrSource, n: usize) -> Vec<(u64, u64, Option<u8>)> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match src.next_instr() {
            Instr::Load { pc, addr, dep } => out.push((pc.raw(), addr.block().index(), dep)),
            Instr::Store { pc, addr } => out.push((pc.raw(), addr.block().index(), None)),
            Instr::Op => {}
        }
    }
    out
}

#[test]
fn em3d_footprints_are_run_structured() {
    // Collect per-region touched-offset sets; most regions must contain at
    // least one run of >= 4 contiguous blocks (the food of stride-based
    // prefetchers and the realism fix for AMPM).
    let mut src = Workload::Em3d.sources(1, 42);
    let accs = accesses(src[0].as_mut(), 30_000);
    let mut regions: HashMap<u64, u64> = HashMap::new();
    for (_, block, _) in &accs {
        *regions.entry(block / 32).or_default() |= 1 << (block % 32);
    }
    let has_run = |bits: u64, len: u32| {
        let mut run = 0;
        for i in 0..32 {
            if bits >> i & 1 == 1 {
                run += 1;
                if run >= len {
                    return true;
                }
            } else {
                run = 0;
            }
        }
        false
    };
    let dense: Vec<u64> = regions
        .values()
        .filter(|&&bits| bits.count_ones() >= 8)
        .copied()
        .collect();
    assert!(dense.len() > 50, "need a sample of dense regions");
    let with_runs = dense.iter().filter(|&&b| has_run(b, 4)).count();
    assert!(
        with_runs * 10 >= dense.len() * 9,
        "{} of {} dense regions have a >=4-block run",
        with_runs,
        dense.len()
    );
}

#[test]
fn em3d_loads_are_chained() {
    let mut src = Workload::Em3d.sources(1, 42);
    let accs = accesses(src[0].as_mut(), 5_000);
    let chained = accs.iter().filter(|(_, _, dep)| dep.is_some()).count();
    assert!(
        chained * 2 > accs.len(),
        "em3d must be dependency-dominated ({chained}/{})",
        accs.len()
    );
}

#[test]
fn zeus_loads_are_mostly_parallel() {
    let mut src = Workload::Zeus.sources(1, 42);
    let accs = accesses(src[0].as_mut(), 5_000);
    let chained = accs.iter().filter(|(_, _, dep)| dep.is_some()).count();
    assert!(
        chained * 2 < accs.len(),
        "Zeus misses must be overlappable ({chained}/{})",
        accs.len()
    );
}

#[test]
fn chains_interleave_distinct_ids() {
    // Multiple concurrent chains must carry distinct chain ids, otherwise
    // the core would serialize unrelated work.
    let mut src = Workload::Em3d.sources(1, 42);
    let accs = accesses(src[0].as_mut(), 10_000);
    let mut ids: Vec<u8> = accs.iter().filter_map(|(_, _, d)| *d).collect();
    ids.sort_unstable();
    ids.dedup();
    assert!(
        ids.len() >= 3,
        "expected several live chains, got {} distinct ids",
        ids.len()
    );
}

#[test]
fn same_pc_produces_similar_footprints_across_regions() {
    // The PC-dominant keying: two dense regions triggered by the same PC
    // should share most of their footprint (modulo the page shift).
    let mut src = Workload::Em3d.sources(1, 42);
    let accs = accesses(src[0].as_mut(), 40_000);
    let mut per_region: HashMap<u64, (u64, u64)> = HashMap::new(); // region -> (pc of first, bits)
    for (pc, block, _) in &accs {
        let e = per_region.entry(block / 32).or_insert((*pc, 0));
        e.1 |= 1 << (block % 32);
    }
    // Group by trigger pc and compare popcount of pairwise intersections.
    let mut by_pc: HashMap<u64, Vec<u64>> = HashMap::new();
    for (pc, bits) in per_region.values() {
        if bits.count_ones() >= 8 {
            by_pc.entry(*pc).or_default().push(*bits);
        }
    }
    let mut checked = 0;
    let mut similar = 0;
    for group in by_pc.values() {
        for pair in group.windows(2).take(50) {
            let inter = (pair[0] & pair[1]).count_ones();
            let uni = (pair[0] | pair[1]).count_ones();
            checked += 1;
            if inter * 2 >= uni {
                similar += 1;
            }
        }
    }
    assert!(checked >= 20, "need enough pairs");
    assert!(
        similar * 3 >= checked * 2,
        "same-PC footprints should usually be similar ({similar}/{checked})"
    );
}

#[test]
fn ops_padding_matches_intensity_targets() {
    // The instruction mix must be dominated by non-memory ops (the MPKI
    // calibration lever); memory accesses are a small fraction.
    for w in [Workload::DataServing, Workload::SatSolver] {
        let mut src = w.sources(1, 42);
        let mut mem = 0usize;
        let total = 50_000;
        for _ in 0..total {
            if !matches!(src[0].next_instr(), Instr::Op) {
                mem += 1;
            }
        }
        let ratio = mem as f64 / total as f64;
        assert!(
            (0.002..0.2).contains(&ratio),
            "{w}: memory-instruction ratio {ratio:.3} out of range"
        );
    }
}

#[test]
fn store_fractions_are_nonzero_where_specified() {
    let mut src = Workload::DataServing.sources(1, 42);
    let mut loads = 0;
    let mut stores = 0;
    for _ in 0..200_000 {
        match src[0].next_instr() {
            Instr::Load { .. } => loads += 1,
            Instr::Store { .. } => stores += 1,
            Instr::Op => {}
        }
    }
    assert!(stores > 0, "Data Serving writes rows");
    assert!(loads > stores, "reads dominate");
}
