//! Building-block access-pattern kernels.
//!
//! Each of the paper's applications is modeled as a weighted mixture of a
//! few archetypal kernels, each reproducing one class of memory behavior:
//!
//! * [`ObjectKernel`] — visits to fixed-layout data objects: the
//!   spatially-correlated traffic (recurring footprints keyed by the
//!   accessing code path) that PPH prefetchers exploit. Knobs control how
//!   much a region's footprint depends on the PC versus the page, how
//!   often pages are revisited, and how noisy repeats are.
//! * [`StreamKernel`] — sequential or strided streaming over large
//!   buffers (scans, stencils): dense, compulsory-miss-heavy traffic.
//! * [`ChaseKernel`] — dependent pointer chasing: serialized, spatially
//!   unpredictable misses.
//! * [`RandomKernel`] — independent uniform traffic over a working set.
//!
//! Kernels emit *episodes* (one object visit, one stream chunk, one chase
//! step) into an instruction queue; [`crate::source::WorkloadSource`]
//! interleaves episodes from several kernels by weight.

use bingo_rng::rngs::SmallRng;
use bingo_rng::Rng;
use bingo_sim::{Addr, Instr, Pc};

use crate::queue::InstrQueue;

/// How a region's footprint is keyed — the knob that separates
/// spatially-correlated applications from temporally-correlated ones.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum PatternKey {
    /// The footprint is mostly a function of the visiting PC (fixed object
    /// layout reached from a code path); `variation` is the per-block
    /// probability that a particular page deviates from the PC's base
    /// pattern. Low variation → `PC+Offset` generalizes well; nonzero
    /// variation → `PC+Address` is strictly more accurate on revisits.
    PcDominant {
        /// Per-block deviation probability in `[0, 1]`.
        variation: f64,
    },
    /// The footprint is a function of the page alone (buffer-pool-style
    /// temporal behavior, e.g. Zeus): only an exact page revisit predicts
    /// it, and no short event helps.
    PageOnly,
}

/// Spatially-correlated object visits.
#[derive(Clone, Debug)]
pub struct ObjectKernel {
    /// Number of distinct trigger PCs (code paths).
    pub pcs: u64,
    /// Expected footprint density in `(0, 1]`.
    pub density: f64,
    /// Footprint keying.
    pub key: PatternKey,
    /// Probability that a visit revisits a page from the reuse pool.
    pub reuse: f64,
    /// Capacity of the recently-visited pool.
    pub reuse_pool: usize,
    /// Number of distinct pages in the universe (sizes the footprint
    /// relative to the LLC; large → compulsory misses dominate).
    pub pages: u64,
    /// Per-visit probability that each footprint block is skipped or an
    /// extra block is touched (irreducible noise).
    pub noise: f64,
    /// Loads issued per touched block (≥ 1; > 1 adds intra-region reuse).
    pub accesses_per_block: u32,
    /// Non-memory instructions between consecutive memory accesses.
    pub ops_per_access: u32,
    /// Fraction of accesses that are stores.
    pub store_fraction: f64,
    /// PC base for this kernel (keeps kernels' PCs disjoint).
    pub pc_base: u64,
    /// Number of object visits in flight at once. Real server traffic
    /// interleaves accesses to many pages (long page residencies), which
    /// is what gives prefetches-at-trigger their timeliness; `1` degrades
    /// to back-to-back visits where every prefetch arrives late.
    pub concurrency: usize,
    /// Whether each visit is a serialized dependency chain (index walk →
    /// row fields; graph-node traversal). Chained visits bound the
    /// memory-level parallelism to roughly `concurrency`; unchained visits
    /// expose every access to the OoO window at once.
    pub chained: bool,
    /// Whether the blocks after the trigger are visited in a random order.
    /// Footprint-based prefetchers are order-insensitive (the paper's
    /// Section II observation); delta-based ones are not — shuffled visits
    /// model irregular structure layouts that defeat delta prediction.
    pub shuffled: bool,

    reuse_entries: Vec<(u64, u64)>, // (pc_idx, page)
    next_insert: usize,
    active: Vec<ActiveVisit>,
    visit_counter: u64,
}

/// One in-progress object visit.
#[derive(Clone, Debug)]
struct ActiveVisit {
    pc: u64,
    region_base: u64,
    offsets: Vec<u32>,
    next: usize,
    repeats_left: u32,
    chain: Option<u8>,
}

/// Region geometry constant used by the generators: 32 blocks (2 KB), the
/// prefetchers' default region.
pub const REGION_BLOCKS: u32 = 32;

/// Offsets a kernel's address space within its core's region so that
/// co-scheduled kernels (and same-shaped kernels with different PCs) never
/// alias each other's data structures. The 8 bits taken from the PC base
/// keep the offset below the 2^44-byte per-core spacing.
fn kernel_base(base_addr: u64, pc_base: u64) -> u64 {
    base_addr + (((pc_base >> 12) & 0xFF) << 35)
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl ObjectKernel {
    /// Computes the deterministic footprint of `(pc_idx, page)` as a
    /// 32-bit region pattern.
    ///
    /// Footprints are built from 1–3 **contiguous runs** of blocks — data
    /// objects occupy adjacent cache blocks, which is also what gives
    /// stride/delta prefetchers (AMPM, VLDP, BOP) their legitimate food.
    /// Under [`PatternKey::PcDominant`], the run layout comes from the PC
    /// and each page *shifts* the runs by a page-specific amount scaled by
    /// `variation` — a deviation only an exact `PC+Address` recurrence can
    /// predict, which is precisely the long event's value.
    fn pattern(&self, pc_idx: u64, page: u64) -> u32 {
        let blocks = REGION_BLOCKS as u64;
        let layout_key = match self.key {
            PatternKey::PcDominant { .. } => pc_idx.wrapping_mul(0x9e37_79b9),
            PatternKey::PageOnly => page.wrapping_mul(0x00de_adbe_ef97_u64),
        };
        let target = ((self.density * blocks as f64).round() as u64).clamp(1, blocks);
        let runs = 1 + (mix(layout_key ^ 0x5151) % 3).min(target.saturating_sub(1).min(2));
        let len = (target / runs).max(1);
        let mut bits = 0u32;
        for r in 0..runs {
            let start = mix(layout_key.wrapping_add(r.wrapping_mul(0x77)) ^ 0xABCD) % blocks;
            // Page-specific shift, resolvable only by the long event.
            let shift = match self.key {
                PatternKey::PcDominant { variation } => {
                    let range = (variation * 10.0).round() as u64;
                    if range == 0 {
                        0
                    } else {
                        mix(pc_idx
                            .wrapping_mul(0x1234_5677)
                            .wrapping_add(page.wrapping_mul(97))
                            .wrapping_add(r))
                            % (2 * range + 1)
                    }
                }
                PatternKey::PageOnly => 0,
            };
            let start = (start + shift) % blocks;
            for j in 0..len {
                bits |= 1 << ((start + j) % blocks);
            }
        }
        debug_assert!(bits != 0);
        bits
    }

    fn start_visit(&mut self, base_addr: u64, rng: &mut SmallRng) {
        let (pc_idx, page) = if !self.reuse_entries.is_empty() && rng.gen_bool(self.reuse) {
            self.reuse_entries[rng.gen_range(0..self.reuse_entries.len())]
        } else {
            let pc_idx = rng.gen_range(0..self.pcs);
            let page = rng.gen_range(0..self.pages);
            if self.reuse_entries.len() < self.reuse_pool {
                self.reuse_entries.push((pc_idx, page));
            } else if self.reuse_pool > 0 {
                self.reuse_entries[self.next_insert % self.reuse_pool] = (pc_idx, page);
                self.next_insert += 1;
            }
            (pc_idx, page)
        };

        let mut bits = self.pattern(pc_idx, page);
        // Per-visit noise: flip each block with probability `noise`.
        if self.noise > 0.0 {
            for i in 0..REGION_BLOCKS {
                if rng.gen_bool(self.noise) {
                    bits ^= 1 << i;
                }
            }
            if bits == 0 {
                bits = 1;
            }
        }

        // The trigger is a deterministic function of the pattern (lowest
        // set bit), so PC+Offset recurs whenever the pattern does.
        let mut offsets: Vec<u32> = (0..REGION_BLOCKS).filter(|i| bits >> i & 1 == 1).collect();
        if self.shuffled && offsets.len() > 2 {
            // Local (windowed) reorder after the trigger: fields of an
            // object are visited roughly front-to-back, but not exactly —
            // enough disorder to defeat delta prediction without erasing
            // the coarse run structure.
            for i in 1..offsets.len() - 1 {
                let span = (offsets.len() - 1 - i).min(3);
                let j = i + rng.gen_range(0..=span);
                offsets.swap(i, j);
            }
        }
        let chain = if self.chained {
            self.visit_counter += 1;
            // Distinct chains per concurrent visit; ids salted by the
            // kernel's PC base so co-scheduled kernels rarely collide.
            Some(((self.pc_base >> 4).wrapping_add(self.visit_counter) % 239) as u8)
        } else {
            None
        };
        self.active.push(ActiveVisit {
            pc: self.pc_base + pc_idx * 4,
            region_base: kernel_base(base_addr, self.pc_base) + page * (REGION_BLOCKS as u64 * 64),
            offsets,
            next: 0,
            repeats_left: self.accesses_per_block,
            chain,
        });
    }

    /// Emits one memory access (plus its op padding), advancing one of the
    /// in-flight visits. New visits start whenever fewer than
    /// `concurrency` are active.
    pub fn emit(&mut self, base_addr: u64, rng: &mut SmallRng, out: &mut InstrQueue) {
        while self.active.len() < self.concurrency.max(1) {
            self.start_visit(base_addr, rng);
        }
        // Advance the *oldest incomplete* visit with some randomness so
        // accesses of different regions interleave.
        let idx = rng.gen_range(0..self.active.len());
        let visit = &mut self.active[idx];
        let off = visit.offsets[visit.next];
        let pc = Pc::new(visit.pc);
        let addr = Addr::new(visit.region_base + off as u64 * 64 + rng.gen_range(0..8u64) * 8);
        out.push_ops(self.ops_per_access);
        if rng.gen_bool(self.store_fraction) {
            out.push(Instr::Store { pc, addr });
        } else {
            out.push(Instr::Load {
                pc,
                addr,
                dep: visit.chain,
            });
        }
        visit.repeats_left -= 1;
        if visit.repeats_left == 0 {
            visit.repeats_left = self.accesses_per_block;
            visit.next += 1;
            if visit.next >= visit.offsets.len() {
                self.active.swap_remove(idx);
            }
        }
    }
}

/// Sequential / strided streaming.
#[derive(Clone, Debug)]
pub struct StreamKernel {
    /// Stride between consecutive accesses, in blocks.
    pub stride_blocks: u64,
    /// Blocks touched per emitted chunk.
    pub chunk_blocks: u64,
    /// Working-set size in blocks before the stream wraps.
    pub wrap_blocks: u64,
    /// Non-memory instructions between accesses.
    pub ops_per_access: u32,
    /// Fraction of accesses that are stores (stencil writes).
    pub store_fraction: f64,
    /// Whether the stream's loads form one dependency chain (serialized
    /// record processing, as in a media server packetizing a file). A
    /// chained stream's baseline is fully miss-latency-bound, which is the
    /// headroom sequential prefetching exploits.
    pub chained: bool,
    /// PC used by the stream.
    pub pc: u64,

    cursor: u64,
}

impl StreamKernel {
    /// Emits one streaming chunk.
    pub fn emit(&mut self, base_addr: u64, rng: &mut SmallRng, out: &mut InstrQueue) {
        let pc = Pc::new(self.pc);
        for i in 0..self.chunk_blocks {
            out.push_ops(self.ops_per_access);
            let block = (self.cursor + i * self.stride_blocks) % self.wrap_blocks;
            let addr = Addr::new(kernel_base(base_addr, self.pc) + block * 64);
            if rng.gen_bool(self.store_fraction) {
                out.push(Instr::Store { pc, addr });
            } else {
                let chain = if self.chained {
                    Some((self.pc % 239) as u8)
                } else {
                    None
                };
                out.push(Instr::Load {
                    pc,
                    addr,
                    dep: chain,
                });
            }
        }
        self.cursor = (self.cursor + self.chunk_blocks * self.stride_blocks) % self.wrap_blocks;
    }
}

/// Dependent pointer chasing.
#[derive(Clone, Debug)]
pub struct ChaseKernel {
    /// Working-set size in blocks.
    pub span_blocks: u64,
    /// Chase steps per episode.
    pub steps: u32,
    /// Non-memory instructions between steps.
    pub ops_per_access: u32,
    /// PC used by the chase loads.
    pub pc: u64,
}

impl ChaseKernel {
    /// Emits one chase episode: `steps` serialized loads at pseudo-random
    /// positions.
    pub fn emit(&mut self, base_addr: u64, rng: &mut SmallRng, out: &mut InstrQueue) {
        let pc = Pc::new(self.pc);
        for _ in 0..self.steps {
            out.push_ops(self.ops_per_access);
            let block = rng.gen_range(0..self.span_blocks);
            out.push(Instr::Load {
                pc,
                // One chain per chase kernel (keyed by its PC), so the
                // chase serializes with itself across episodes but not
                // with unrelated kernels' loads.
                addr: Addr::new(kernel_base(base_addr, self.pc) + block * 64),
                dep: Some((self.pc % 239) as u8),
            });
        }
    }
}

/// Independent uniform traffic.
#[derive(Clone, Debug)]
pub struct RandomKernel {
    /// Working-set size in blocks.
    pub span_blocks: u64,
    /// Accesses per episode.
    pub burst: u32,
    /// Non-memory instructions between accesses.
    pub ops_per_access: u32,
    /// Fraction of stores.
    pub store_fraction: f64,
    /// PC used by the accesses.
    pub pc: u64,
}

impl RandomKernel {
    /// Emits one burst of independent accesses.
    pub fn emit(&mut self, base_addr: u64, rng: &mut SmallRng, out: &mut InstrQueue) {
        let pc = Pc::new(self.pc);
        for _ in 0..self.burst {
            out.push_ops(self.ops_per_access);
            let block = rng.gen_range(0..self.span_blocks);
            let addr = Addr::new(kernel_base(base_addr, self.pc) + block * 64);
            if rng.gen_bool(self.store_fraction) {
                out.push(Instr::Store { pc, addr });
            } else {
                out.push(Instr::Load {
                    pc,
                    addr,
                    dep: None,
                });
            }
        }
    }
}

/// A kernel of any archetype.
#[derive(Clone, Debug)]
pub enum Kernel {
    /// Spatially-correlated object visits.
    Object(ObjectKernel),
    /// Streaming / strided scans.
    Stream(StreamKernel),
    /// Dependent pointer chasing.
    Chase(ChaseKernel),
    /// Independent uniform traffic.
    Random(RandomKernel),
}

impl Kernel {
    /// Emits one episode into `out`.
    pub fn emit(&mut self, base_addr: u64, rng: &mut SmallRng, out: &mut InstrQueue) {
        match self {
            Kernel::Object(k) => k.emit(base_addr, rng, out),
            Kernel::Stream(k) => k.emit(base_addr, rng, out),
            Kernel::Chase(k) => k.emit(base_addr, rng, out),
            Kernel::Random(k) => k.emit(base_addr, rng, out),
        }
    }
}

/// Declarative parameters for an [`ObjectKernel`] (named-field
/// construction; see the field docs on [`ObjectKernel`]).
#[derive(Copy, Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub struct ObjectSpec {
    pub pcs: u64,
    pub density: f64,
    pub key: PatternKey,
    pub reuse: f64,
    pub reuse_pool: usize,
    pub pages: u64,
    pub noise: f64,
    pub accesses_per_block: u32,
    pub ops_per_access: u32,
    pub store_fraction: f64,
    pub concurrency: usize,
    pub chained: bool,
    pub shuffled: bool,
    pub pc_base: u64,
}

impl Default for ObjectSpec {
    fn default() -> Self {
        ObjectSpec {
            pcs: 16,
            density: 0.25,
            key: PatternKey::PcDominant { variation: 0.1 },
            reuse: 0.3,
            reuse_pool: 256,
            pages: 1 << 21,
            noise: 0.02,
            accesses_per_block: 1,
            ops_per_access: 50,
            store_fraction: 0.1,
            concurrency: 8,
            chained: false,
            shuffled: false,
            pc_base: 0x10_000,
        }
    }
}

/// Builds an [`ObjectKernel`] from a spec.
pub fn object(spec: ObjectSpec) -> Kernel {
    Kernel::Object(ObjectKernel {
        pcs: spec.pcs,
        density: spec.density,
        key: spec.key,
        reuse: spec.reuse,
        reuse_pool: spec.reuse_pool,
        pages: spec.pages,
        noise: spec.noise,
        accesses_per_block: spec.accesses_per_block,
        ops_per_access: spec.ops_per_access,
        store_fraction: spec.store_fraction,
        concurrency: spec.concurrency,
        chained: spec.chained,
        shuffled: spec.shuffled,
        pc_base: spec.pc_base,
        reuse_entries: Vec::new(),
        next_insert: 0,
        active: Vec::new(),
        visit_counter: 0,
    })
}

/// Convenience constructor for [`StreamKernel`].
pub fn stream(
    stride_blocks: u64,
    chunk_blocks: u64,
    wrap_blocks: u64,
    ops_per_access: u32,
    store_fraction: f64,
    chained: bool,
    pc: u64,
) -> Kernel {
    Kernel::Stream(StreamKernel {
        stride_blocks,
        chunk_blocks,
        wrap_blocks,
        ops_per_access,
        store_fraction,
        chained,
        pc,
        cursor: 0,
    })
}

/// Convenience constructor for [`ChaseKernel`].
pub fn chase(span_blocks: u64, steps: u32, ops_per_access: u32, pc: u64) -> Kernel {
    Kernel::Chase(ChaseKernel {
        span_blocks,
        steps,
        ops_per_access,
        pc,
    })
}

/// Convenience constructor for [`RandomKernel`].
pub fn random(
    span_blocks: u64,
    burst: u32,
    ops_per_access: u32,
    store_fraction: f64,
    pc: u64,
) -> Kernel {
    Kernel::Random(RandomKernel {
        span_blocks,
        burst,
        ops_per_access,
        store_fraction,
        pc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn drain_accesses(out: &mut InstrQueue) -> Vec<(u64, u64, bool)> {
        std::iter::from_fn(|| out.pop())
            .filter_map(|i| match i {
                Instr::Load { pc, addr, dep } => Some((pc.raw(), addr.raw(), dep.is_some())),
                Instr::Store { pc, addr } => Some((pc.raw(), addr.raw(), false)),
                Instr::Op => None,
            })
            .collect()
    }

    #[test]
    fn object_kernel_pattern_is_deterministic() {
        let k = match object(ObjectSpec {
            pcs: 8,
            density: 0.3,
            key: PatternKey::PcDominant { variation: 0.1 },
            reuse: 0.0,
            reuse_pool: 0,
            pages: 1000,
            noise: 0.0,
            ops_per_access: 4,
            store_fraction: 0.0,
            concurrency: 1,
            pc_base: 0x1000,
            ..ObjectSpec::default()
        }) {
            Kernel::Object(k) => k,
            _ => unreachable!(),
        };
        assert_eq!(k.pattern(3, 77), k.pattern(3, 77));
        assert_ne!(k.pattern(3, 77), k.pattern(4, 77), "PC changes the pattern");
    }

    #[test]
    fn pc_dominant_patterns_mostly_shared_across_pages() {
        let k = match object(ObjectSpec {
            pcs: 8,
            density: 0.3,
            key: PatternKey::PcDominant { variation: 0.05 },
            reuse: 0.0,
            reuse_pool: 0,
            pages: 1000,
            noise: 0.0,
            concurrency: 1,
            pc_base: 0x1000,
            ..ObjectSpec::default()
        }) {
            Kernel::Object(k) => k,
            _ => unreachable!(),
        };
        // Low variation: two pages visited by the same PC share most bits.
        let a = k.pattern(2, 10);
        let b = k.pattern(2, 20);
        let differing = (a ^ b).count_ones();
        assert!(
            differing <= 6,
            "only {differing} bits may differ at 5% variation"
        );
    }

    #[test]
    fn page_only_patterns_ignore_pc() {
        let k = match object(ObjectSpec {
            pcs: 8,
            density: 0.3,
            key: PatternKey::PageOnly,
            reuse: 0.0,
            reuse_pool: 0,
            pages: 1000,
            noise: 0.0,
            concurrency: 1,
            pc_base: 0x1000,
            ..ObjectSpec::default()
        }) {
            Kernel::Object(k) => k,
            _ => unreachable!(),
        };
        assert_eq!(k.pattern(1, 50), k.pattern(7, 50));
        assert_ne!(k.pattern(1, 50), k.pattern(1, 51));
    }

    #[test]
    fn object_visit_stays_in_one_region() {
        let mut k = object(ObjectSpec {
            pcs: 4,
            density: 0.4,
            key: PatternKey::PcDominant { variation: 0.0 },
            reuse: 0.0,
            reuse_pool: 0,
            pages: 100,
            noise: 0.0,
            ops_per_access: 2,
            store_fraction: 0.0,
            concurrency: 1,
            pc_base: 0x1000,
            ..ObjectSpec::default()
        });
        let mut out = InstrQueue::new();
        let mut r = rng();
        // Concurrency 1: visits run to completion one region at a time,
        // each visiting ascending offsets within a single region.
        for _ in 0..200 {
            k.emit(0, &mut r, &mut out);
        }
        let accesses = drain_accesses(&mut out);
        assert!(accesses.len() >= 200);
        let mut last_region = u64::MAX;
        let mut last_offset = 0u64;
        for (_, addr, _) in &accesses {
            let region = addr / 2048;
            let offset = (addr % 2048) / 64;
            if region == last_region {
                assert!(offset >= last_offset, "offsets ascend within a visit");
            }
            last_region = region;
            last_offset = offset;
        }
    }

    #[test]
    fn stream_kernel_is_sequential_and_wraps() {
        let mut k = stream(1, 8, 16, 0, 0.0, false, 0x400);
        let mut out = InstrQueue::new();
        let mut r = rng();
        k.emit(0, &mut r, &mut out);
        k.emit(0, &mut r, &mut out);
        k.emit(0, &mut r, &mut out); // wraps after 16 blocks
        let accesses = drain_accesses(&mut out);
        let blocks: Vec<u64> = accesses.iter().map(|(_, a, _)| a / 64).collect();
        assert_eq!(&blocks[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(blocks[16], 0, "stream wraps at wrap_blocks");
    }

    #[test]
    fn chase_kernel_emits_dependent_loads() {
        let mut k = chase(1000, 5, 3, 0x500);
        let mut out = InstrQueue::new();
        let mut r = rng();
        k.emit(0, &mut r, &mut out);
        let accesses = drain_accesses(&mut out);
        assert_eq!(accesses.len(), 5);
        assert!(accesses.iter().all(|(_, _, dep)| *dep));
    }

    #[test]
    fn ops_density_controls_instruction_mix() {
        let mut k = random(100, 10, 9, 0.0, 0x600);
        let mut out = InstrQueue::new();
        let mut r = rng();
        k.emit(0, &mut r, &mut out);
        let total = out.len();
        let mems = std::iter::from_fn(|| out.pop())
            .filter(|i| !matches!(i, Instr::Op))
            .count();
        assert_eq!(total, 100);
        assert_eq!(mems, 10, "1 memory access per 9 ops");
    }

    #[test]
    fn base_addr_offsets_address_space() {
        let mut k = stream(1, 4, 1024, 0, 0.0, false, 0x400);
        let mut out = InstrQueue::new();
        let mut r = rng();
        let base = 1u64 << 40;
        k.emit(base, &mut r, &mut out);
        let accesses = drain_accesses(&mut out);
        assert!(accesses.iter().all(|(_, a, _)| *a >= base));
    }
}
