//! # bingo-workloads — the evaluation workload suite
//!
//! Synthetic, seeded, deterministic instruction-stream generators modeling
//! the ten applications of the paper's Table II: four commercial server
//! workloads (Data Serving, SAT Solver, Streaming, Zeus), the `em3d`
//! scientific kernel, and five four-program SPEC CPU2006 mixes.
//!
//! The original traces are proprietary (SimFlex server checkpoints, SPEC
//! binaries); these generators substitute them by reproducing the
//! statistics that determine spatial-prefetcher behavior — see DESIGN.md §4
//! and the module docs of [`kernels`].
//!
//! ## Example
//!
//! ```
//! use bingo_sim::{NoPrefetcher, System, SystemConfig};
//! use bingo_workloads::Workload;
//!
//! let mut cfg = SystemConfig::tiny();
//! cfg.cores = 1;
//! let sources = Workload::Streaming.sources(cfg.cores, 42);
//! let result = System::new(cfg, sources, vec![Box::new(NoPrefetcher)], 50_000).run();
//! assert!(result.llc.demand_misses > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod kernels;
pub mod queue;
pub mod source;
pub mod trace_workload;

pub use apps::{SpecProgram, Workload};
pub use kernels::{Kernel, ObjectSpec, PatternKey, REGION_BLOCKS};
pub use queue::InstrQueue;
pub use source::{WeightedKernel, WorkloadSource};
pub use trace_workload::{capture_to_file, capture_workload, TraceWorkload};
