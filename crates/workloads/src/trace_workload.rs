//! Recorded-trace workloads: a directory of per-core `.btrc` files that
//! stands in for a synthetic generator.
//!
//! A captured workload is a directory holding one framed trace per core
//! (`core0.btrc`, `core1.btrc`, ...), as written by the `trace_capture`
//! tool. [`TraceWorkload`] adapts such a directory to the same
//! `sources(cores)` shape as [`crate::Workload::sources`], so the bench
//! harness can evaluate prefetchers on recorded streams exactly as it
//! does on live generators. Each per-core file gets its own
//! bounded-memory reader, so total residency is `cores × one chunk`.

use std::fs;
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};

use bingo_sim::InstrSource;
use bingo_trace::{capture_source, Policy, ReadError, ReplaySource, TraceWriter};

use crate::Workload;

/// A directory of per-core captured traces, usable as a workload.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    dir: PathBuf,
    name: String,
    policy: Policy,
}

impl TraceWorkload {
    /// Opens a capture directory under [`Policy::Strict`].
    ///
    /// Fails with the path and cause when the directory is missing or
    /// holds no `core0.btrc` — misconfiguration surfaces before any
    /// simulation time is spent.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_policy(dir, Policy::Strict)
    }

    /// Opens a capture directory with an explicit recovery policy.
    pub fn with_policy(dir: impl Into<PathBuf>, policy: Policy) -> io::Result<Self> {
        let dir = dir.into();
        let probe = core_path(&dir, 0);
        if !probe.is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "trace workload {}: no {} (not a capture directory?)",
                    dir.display(),
                    probe.display()
                ),
            ));
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string());
        Ok(TraceWorkload { dir, name, policy })
    }

    /// The capture directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Display name (the directory's file name, typically a workload slug).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recovery policy replay sources will use.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Stable identifier for checkpoint cell keys: the capture
    /// directory path plus the policy when non-default, so strict and
    /// lenient replays of the same file never share a checkpoint line.
    pub fn key(&self) -> String {
        match self.policy {
            Policy::Strict => self.dir.display().to_string(),
            Policy::Lenient => format!("{}?policy=lenient", self.dir.display()),
        }
    }

    /// Path of core `core`'s trace file.
    pub fn core_path(&self, core: usize) -> PathBuf {
        core_path(&self.dir, core)
    }

    /// Builds one replay source per core.
    ///
    /// Cores beyond the captured count wrap around onto the captured
    /// files (matching how SPEC mixes cycle programs across cores).
    pub fn sources(&self, cores: usize) -> Result<Vec<Box<dyn InstrSource>>, ReadError> {
        let captured = self.captured_cores();
        assert!(captured > 0, "open() guarantees at least core0.btrc");
        (0..cores)
            .map(|core| {
                let path = self.core_path(core % captured);
                ReplaySource::open(path, self.policy)
                    .map(|source| Box::new(source) as Box<dyn InstrSource>)
            })
            .collect()
    }

    /// Number of consecutive `core{i}.btrc` files present.
    pub fn captured_cores(&self) -> usize {
        (0..).take_while(|&i| self.core_path(i).is_file()).count()
    }
}

fn core_path(dir: &Path, core: usize) -> PathBuf {
    dir.join(format!("core{core}.btrc"))
}

/// Captures `records_per_core` instructions from each of `workload`'s
/// per-core generators (seeded with `seed`) into `dir/core{i}.btrc`.
///
/// Replaying the capture with the same core count reproduces the live
/// generator streams bit for bit, provided `records_per_core` covers the
/// instructions the run will fetch (retired instructions plus a small
/// slack for in-flight fetches at the end).
pub fn capture_workload(
    workload: Workload,
    cores: usize,
    seed: u64,
    records_per_core: u64,
    chunk_records: u32,
    dir: &Path,
) -> io::Result<()> {
    fs::create_dir_all(dir).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("create capture dir {}: {e}", dir.display()),
        )
    })?;
    let sources = workload.sources(cores, seed);
    for (core, mut source) in sources.into_iter().enumerate() {
        let path = core_path(dir, core);
        let file = fs::File::create(&path).map_err(|e| {
            io::Error::new(e.kind(), format!("create trace {}: {e}", path.display()))
        })?;
        capture_source(
            &mut *source,
            records_per_core,
            chunk_records,
            io::BufWriter::new(file),
        )
        .map_err(|e| io::Error::new(e.kind(), format!("write trace {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Captures an arbitrary single source into one `.btrc` file — the
/// generic building block `capture_workload` wraps per core.
pub fn capture_to_file(
    source: &mut dyn InstrSource,
    records: u64,
    chunk_records: u32,
    path: &Path,
) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("create trace dir {}: {e}", parent.display()),
            )
        })?;
    }
    let file = fs::File::create(path)
        .map_err(|e| io::Error::new(e.kind(), format!("create trace {}: {e}", path.display())))?;
    let mut writer = TraceWriter::new(io::BufWriter::new(file), chunk_records)
        .map_err(|e| io::Error::new(e.kind(), format!("write trace {}: {e}", path.display())))?;
    for _ in 0..records {
        writer.push(source.next_instr()).map_err(|e| {
            io::Error::new(e.kind(), format!("write trace {}: {e}", path.display()))
        })?;
    }
    writer
        .finish()
        .map_err(|e| io::Error::new(e.kind(), format!("finish trace {}: {e}", path.display())))
}

// `Seek + Write` bound sanity for BufWriter<File> used above.
const _: fn() = || {
    fn assert_rw<W: Write + Seek>() {}
    assert_rw::<io::BufWriter<fs::File>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bingo-trace-workload-tests")
            .join(format!("{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn captured_workload_replays_the_generator_stream() {
        let dir = scratch("replay");
        capture_workload(Workload::Streaming, 2, 42, 500, 64, &dir).expect("capture");

        let tw = TraceWorkload::open(&dir).expect("open");
        assert_eq!(tw.captured_cores(), 2);
        let mut replayed = tw.sources(2).expect("sources");
        let mut live = Workload::Streaming.sources(2, 42);
        for core in 0..2 {
            for i in 0..500 {
                assert_eq!(
                    replayed[core].next_instr(),
                    live[core].next_instr(),
                    "core {core} record {i}"
                );
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extra_cores_wrap_onto_captured_files() {
        let dir = scratch("wrap");
        capture_workload(Workload::Em3d, 1, 7, 100, 32, &dir).expect("capture");
        let tw = TraceWorkload::open(&dir).expect("open");
        let mut sources = tw.sources(3).expect("sources");
        assert_eq!(sources.len(), 3);
        // One captured core: every extra core replays the same file.
        for _ in 0..50 {
            assert_eq!(sources[0].next_instr(), sources[1].next_instr());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_fails_with_path() {
        let missing = scratch("gone").join("nope");
        let err = TraceWorkload::open(&missing).expect_err("must fail");
        assert!(err.to_string().contains("nope"), "error names the path");
    }

    #[test]
    fn keys_distinguish_policies() {
        let dir = scratch("keys");
        capture_workload(Workload::Zeus, 1, 1, 50, 16, &dir).expect("capture");
        let strict = TraceWorkload::open(&dir).expect("open");
        let lenient = TraceWorkload::with_policy(&dir, Policy::Lenient).expect("open");
        assert_ne!(strict.key(), lenient.key());
        fs::remove_dir_all(&dir).ok();
    }
}
