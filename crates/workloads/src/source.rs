//! [`WorkloadSource`]: a deterministic, seeded [`InstrSource`] that
//! interleaves episodes from a weighted set of kernels.

use std::collections::VecDeque;

use bingo_rng::rngs::SmallRng;
use bingo_rng::{Rng, SeedableRng};
use bingo_sim::{Instr, InstrSource};

use crate::kernels::Kernel;

/// One weighted kernel inside a workload.
#[derive(Clone, Debug)]
pub struct WeightedKernel {
    /// Relative selection weight of this kernel.
    pub weight: u32,
    /// The kernel itself.
    pub kernel: Kernel,
}

/// A per-core instruction source built from weighted kernels.
///
/// Episodes from different kernels are interleaved by weighted random
/// selection (deterministic under the seed), modeling a program phase that
/// alternates between access-pattern classes.
#[derive(Debug)]
pub struct WorkloadSource {
    kernels: Vec<WeightedKernel>,
    total_weight: u32,
    queue: VecDeque<Instr>,
    rng: SmallRng,
    base_addr: u64,
}

impl WorkloadSource {
    /// Creates a source.
    ///
    /// `base_addr` offsets every generated address, keeping per-core address
    /// spaces disjoint (the simulated system is non-coherent: workloads are
    /// multiprogrammed or share-nothing server shards, as in the paper's
    /// per-core-prefetcher setup).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or all weights are zero.
    pub fn new(kernels: Vec<WeightedKernel>, seed: u64, base_addr: u64) -> Self {
        assert!(!kernels.is_empty(), "workload needs at least one kernel");
        let total_weight: u32 = kernels.iter().map(|k| k.weight).sum();
        assert!(total_weight > 0, "total kernel weight must be nonzero");
        WorkloadSource {
            kernels,
            total_weight,
            queue: VecDeque::with_capacity(256),
            rng: SmallRng::seed_from_u64(seed),
            base_addr,
        }
    }
}

impl InstrSource for WorkloadSource {
    fn next_instr(&mut self) -> Instr {
        loop {
            if let Some(i) = self.queue.pop_front() {
                return i;
            }
            let mut pick = self.rng.gen_range(0..self.total_weight);
            let idx = self
                .kernels
                .iter()
                .position(|k| {
                    if pick < k.weight {
                        true
                    } else {
                        pick -= k.weight;
                        false
                    }
                })
                .expect("weighted pick is within total");
            self.kernels[idx]
                .kernel
                .emit(self.base_addr, &mut self.rng, &mut self.queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{chase, stream};

    fn collect(src: &mut WorkloadSource, n: usize) -> Vec<Instr> {
        (0..n).map(|_| src.next_instr()).collect()
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            WorkloadSource::new(
                vec![
                    WeightedKernel {
                        weight: 3,
                        kernel: stream(1, 8, 1 << 20, 4, 0.1, false, 0x400),
                    },
                    WeightedKernel {
                        weight: 1,
                        kernel: chase(1 << 16, 4, 6, 0x500),
                    },
                ],
                7,
                0,
            )
        };
        let a = collect(&mut mk(), 5000);
        let b = collect(&mut mk(), 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            WorkloadSource::new(
                vec![WeightedKernel {
                    weight: 1,
                    kernel: chase(1 << 16, 4, 6, 0x500),
                }],
                seed,
                0,
            )
        };
        let a = collect(&mut mk(1), 1000);
        let b = collect(&mut mk(2), 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_bias_kernel_selection() {
        let mut src = WorkloadSource::new(
            vec![
                WeightedKernel {
                    weight: 9,
                    kernel: stream(1, 4, 1 << 20, 0, 0.0, false, 0x400),
                },
                WeightedKernel {
                    weight: 1,
                    kernel: chase(1 << 16, 4, 0, 0x500),
                },
            ],
            3,
            0,
        );
        let instrs = collect(&mut src, 10_000);
        let (mut stream_n, mut chase_n) = (0usize, 0usize);
        for i in &instrs {
            if let Instr::Load { pc, .. } = i {
                if pc.raw() == 0x400 {
                    stream_n += 1;
                } else {
                    chase_n += 1;
                }
            }
        }
        assert!(
            stream_n > chase_n * 4,
            "9:1 weights should strongly favor the stream ({stream_n} vs {chase_n})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_kernel_list_rejected() {
        let _ = WorkloadSource::new(vec![], 0, 0);
    }
}
