//! [`WorkloadSource`]: a deterministic, seeded [`InstrSource`] that
//! interleaves episodes from a weighted set of kernels.

use bingo_rng::rngs::SmallRng;
use bingo_rng::{Rng, SeedableRng};
use bingo_sim::{Instr, InstrSource};

use crate::kernels::Kernel;
use crate::queue::InstrQueue;

/// One weighted kernel inside a workload.
#[derive(Clone, Debug)]
pub struct WeightedKernel {
    /// Relative selection weight of this kernel.
    pub weight: u32,
    /// The kernel itself.
    pub kernel: Kernel,
}

/// A per-core instruction source built from weighted kernels.
///
/// Episodes from different kernels are interleaved by weighted random
/// selection (deterministic under the seed), modeling a program phase that
/// alternates between access-pattern classes.
#[derive(Debug)]
pub struct WorkloadSource {
    kernels: Vec<WeightedKernel>,
    total_weight: u32,
    queue: InstrQueue,
    rng: SmallRng,
    base_addr: u64,
}

impl WorkloadSource {
    /// Creates a source.
    ///
    /// `base_addr` offsets every generated address, keeping per-core address
    /// spaces disjoint (the simulated system is non-coherent: workloads are
    /// multiprogrammed or share-nothing server shards, as in the paper's
    /// per-core-prefetcher setup).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or all weights are zero.
    pub fn new(kernels: Vec<WeightedKernel>, seed: u64, base_addr: u64) -> Self {
        assert!(!kernels.is_empty(), "workload needs at least one kernel");
        let total_weight: u32 = kernels.iter().map(|k| k.weight).sum();
        assert!(total_weight > 0, "total kernel weight must be nonzero");
        WorkloadSource {
            kernels,
            total_weight,
            queue: InstrQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            base_addr,
        }
    }

    /// Picks a kernel by weight and emits its next episode into the queue.
    ///
    /// Refill timing is unobservable: each per-source RNG draw happens at
    /// the same position in the draw sequence whether a refill is
    /// triggered lazily by [`InstrSource::next_instr`] or eagerly by
    /// [`InstrSource::peek_ops`], so the generated stream is identical.
    fn refill(&mut self) {
        let mut pick = self.rng.gen_range(0..self.total_weight);
        let idx = self
            .kernels
            .iter()
            .position(|k| {
                if pick < k.weight {
                    true
                } else {
                    pick -= k.weight;
                    false
                }
            })
            .expect("weighted pick is within total");
        self.kernels[idx]
            .kernel
            .emit(self.base_addr, &mut self.rng, &mut self.queue);
    }
}

impl InstrSource for WorkloadSource {
    fn next_instr(&mut self) -> Instr {
        loop {
            if let Some(i) = self.queue.pop() {
                return i;
            }
            self.refill();
        }
    }

    fn take_ops(&mut self, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            if self.queue.is_empty() {
                self.refill();
                continue;
            }
            let n = self.queue.take_ops(max - taken);
            if n == 0 {
                break; // a memory access heads the queue
            }
            taken += n;
        }
        taken
    }

    fn peek_ops(&mut self) -> usize {
        while self.queue.is_empty() {
            self.refill();
        }
        self.queue.leading_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{chase, stream};

    fn collect(src: &mut WorkloadSource, n: usize) -> Vec<Instr> {
        (0..n).map(|_| src.next_instr()).collect()
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            WorkloadSource::new(
                vec![
                    WeightedKernel {
                        weight: 3,
                        kernel: stream(1, 8, 1 << 20, 4, 0.1, false, 0x400),
                    },
                    WeightedKernel {
                        weight: 1,
                        kernel: chase(1 << 16, 4, 6, 0x500),
                    },
                ],
                7,
                0,
            )
        };
        let a = collect(&mut mk(), 5000);
        let b = collect(&mut mk(), 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            WorkloadSource::new(
                vec![WeightedKernel {
                    weight: 1,
                    kernel: chase(1 << 16, 4, 6, 0x500),
                }],
                seed,
                0,
            )
        };
        let a = collect(&mut mk(1), 1000);
        let b = collect(&mut mk(2), 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_bias_kernel_selection() {
        let mut src = WorkloadSource::new(
            vec![
                WeightedKernel {
                    weight: 9,
                    kernel: stream(1, 4, 1 << 20, 0, 0.0, false, 0x400),
                },
                WeightedKernel {
                    weight: 1,
                    kernel: chase(1 << 16, 4, 0, 0x500),
                },
            ],
            3,
            0,
        );
        let instrs = collect(&mut src, 10_000);
        let (mut stream_n, mut chase_n) = (0usize, 0usize);
        for i in &instrs {
            if let Instr::Load { pc, .. } = i {
                if pc.raw() == 0x400 {
                    stream_n += 1;
                } else {
                    chase_n += 1;
                }
            }
        }
        assert!(
            stream_n > chase_n * 4,
            "9:1 weights should strongly favor the stream ({stream_n} vs {chase_n})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_kernel_list_rejected() {
        let _ = WorkloadSource::new(vec![], 0, 0);
    }

    /// Draining through `take_ops`/`peek_ops` must observe exactly the
    /// stream `next_instr` alone produces — the batched-dispatch and
    /// op-crank paths rely on this equivalence for bit-for-bit results.
    #[test]
    fn batched_op_consumption_matches_lazy() {
        let mk = || {
            WorkloadSource::new(
                vec![
                    WeightedKernel {
                        weight: 3,
                        kernel: stream(1, 8, 1 << 20, 7, 0.1, false, 0x400),
                    },
                    WeightedKernel {
                        weight: 2,
                        kernel: chase(1 << 16, 4, 3, 0x500),
                    },
                ],
                11,
                0,
            )
        };
        let lazy = collect(&mut mk(), 20_000);
        let mut src = mk();
        let mut batched = Vec::new();
        let mut step = 0usize;
        while batched.len() < 20_000 {
            // Vary the batch size and interleave peeks to cover run
            // boundaries and peek-triggered refills.
            step += 1;
            let peeked = src.peek_ops();
            let n = src.take_ops(step % 5);
            assert!(n <= peeked, "take_ops exceeded the peeked run");
            for _ in 0..n {
                batched.push(Instr::Op);
            }
            if n == 0 {
                batched.push(src.next_instr());
            }
        }
        assert_eq!(lazy, batched[..20_000]);
    }
}
