//! [`InstrQueue`]: a run-length-encoded instruction buffer.
//!
//! Generated instruction streams are overwhelmingly non-memory `Op`s
//! (96–99 % across the workload suite) arriving in long runs between
//! memory accesses — every kernel emits `ops_per_access` ops before each
//! load or store. Buffering those runs as counts instead of individual
//! [`Instr::Op`] elements makes the producer side O(1) per run and lets
//! consumers drain whole runs in one call ([`InstrQueue::take_ops`]),
//! which is what the simulator's batched op dispatch and op-crank
//! fast-forward feed on. Element-wise consumption ([`InstrQueue::pop`])
//! observes exactly the same instruction sequence.

use std::collections::VecDeque;

use bingo_sim::Instr;

/// One buffered queue element: a run of ops, or a single memory access.
#[derive(Copy, Clone, Debug)]
enum Item {
    /// `n` consecutive [`Instr::Op`]s (`n > 0`; adjacent runs are merged).
    Ops(u32),
    /// One load or store.
    Mem(Instr),
}

/// A FIFO of dynamic instructions with op runs stored run-length-encoded.
#[derive(Clone, Debug, Default)]
pub struct InstrQueue {
    items: VecDeque<Item>,
    /// Expanded length (each op in a run counts individually).
    len: usize,
}

impl InstrQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        InstrQueue::default()
    }

    /// Number of buffered instructions (runs counted expanded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no instructions are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one instruction. `Instr::Op` extends the trailing run.
    pub fn push(&mut self, instr: Instr) {
        match instr {
            Instr::Op => self.push_ops(1),
            mem => {
                self.items.push_back(Item::Mem(mem));
                self.len += 1;
            }
        }
    }

    /// Appends a run of `n` ops in O(1), merging with a trailing run.
    pub fn push_ops(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        self.len += n as usize;
        match self.items.back_mut() {
            Some(Item::Ops(run)) => *run += n,
            _ => self.items.push_back(Item::Ops(n)),
        }
    }

    /// Removes and returns the next instruction, if any.
    pub fn pop(&mut self) -> Option<Instr> {
        match self.items.front_mut() {
            None => None,
            Some(Item::Ops(run)) => {
                *run -= 1;
                if *run == 0 {
                    self.items.pop_front();
                }
                self.len -= 1;
                Some(Instr::Op)
            }
            Some(Item::Mem(_)) => {
                let Some(Item::Mem(mem)) = self.items.pop_front() else {
                    unreachable!("front was just observed to be a memory access")
                };
                self.len -= 1;
                Some(mem)
            }
        }
    }

    /// Length of the op run at the front (0 if the front is a memory
    /// access or the queue is empty). Runs are merged on push, so this is
    /// the exact count of consecutive leading ops.
    pub fn leading_ops(&self) -> usize {
        match self.items.front() {
            Some(Item::Ops(run)) => *run as usize,
            _ => 0,
        }
    }

    /// Consumes up to `max` leading ops in O(1), returning how many were
    /// taken. Stops (returns less than `max`) at a memory access or an
    /// empty queue.
    pub fn take_ops(&mut self, max: usize) -> usize {
        match self.items.front_mut() {
            Some(Item::Ops(run)) => {
                let taken = (*run as usize).min(max);
                *run -= taken as u32;
                if *run == 0 {
                    self.items.pop_front();
                }
                self.len -= taken;
                taken
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sim::{Addr, Pc};

    fn load(a: u64) -> Instr {
        Instr::Load {
            pc: Pc::new(0x400),
            addr: Addr::new(a),
            dep: None,
        }
    }

    #[test]
    fn pop_expands_runs_in_order() {
        let mut q = InstrQueue::new();
        q.push_ops(3);
        q.push(load(64));
        q.push_ops(2);
        assert_eq!(q.len(), 6);
        let drained: Vec<Instr> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![
                Instr::Op,
                Instr::Op,
                Instr::Op,
                load(64),
                Instr::Op,
                Instr::Op
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn adjacent_runs_merge() {
        let mut q = InstrQueue::new();
        q.push_ops(4);
        q.push(Instr::Op);
        q.push_ops(2);
        assert_eq!(q.leading_ops(), 7);
        assert_eq!(q.take_ops(100), 7);
        assert!(q.is_empty());
    }

    #[test]
    fn take_ops_stops_at_memory_access() {
        let mut q = InstrQueue::new();
        q.push_ops(5);
        q.push(load(128));
        q.push_ops(3);
        assert_eq!(q.take_ops(2), 2);
        assert_eq!(q.take_ops(10), 3, "only the rest of the leading run");
        assert_eq!(q.take_ops(10), 0, "memory access blocks the run");
        assert_eq!(q.pop(), Some(load(128)));
        assert_eq!(q.leading_ops(), 3);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn take_then_pop_matches_pop_only() {
        // Consuming via any mix of take_ops/pop yields the same sequence.
        let build = || {
            let mut q = InstrQueue::new();
            q.push_ops(3);
            q.push(load(64));
            q.push(load(128));
            q.push_ops(1);
            q
        };
        let mut a = build();
        let mut popped = Vec::new();
        while let Some(i) = a.pop() {
            popped.push(i);
        }
        let mut b = build();
        let mut mixed = Vec::new();
        loop {
            let n = b.take_ops(2);
            for _ in 0..n {
                mixed.push(Instr::Op);
            }
            if n == 0 {
                match b.pop() {
                    Some(i) => mixed.push(i),
                    None => break,
                }
            }
        }
        assert_eq!(popped, mixed);
    }
}
