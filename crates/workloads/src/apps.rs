//! The paper's workload suite (Table II), modeled as kernel mixtures.
//!
//! The original traces are unavailable (commercial server checkpoints under
//! SimFlex and SPEC CPU2006 binaries), so each application is substituted
//! by a synthetic generator reproducing its *relevant statistics*: baseline
//! LLC MPKI, degree and kind of spatial correlation (PC-keyed vs page-keyed
//! footprints), page-reuse rate, footprint density, and dependence
//! structure (parallel bursts vs serialized chases). See DESIGN.md §4 for
//! the substitution rationale; `tests/workload_calibration.rs` asserts the
//! MPKI bands.

use bingo_sim::InstrSource;

use crate::kernels::{chase, object, random, stream, ObjectSpec, PatternKey};
use crate::source::{WeightedKernel, WorkloadSource};

/// One of the ten evaluated workloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// Cassandra database under the Yahoo! cloud serving benchmark.
    DataServing,
    /// Cloud9 parallel symbolic execution engine.
    SatSolver,
    /// Darwin streaming server.
    Streaming,
    /// Zeus web server.
    Zeus,
    /// em3d electromagnetic wave propagation (400 K-node graph).
    Em3d,
    /// SPEC mix: lbm, omnetpp, soplex, sphinx3.
    Mix1,
    /// SPEC mix: lbm, libquantum, sphinx3, zeusmp.
    Mix2,
    /// SPEC mix: milc, omnetpp, perlbench, soplex.
    Mix3,
    /// SPEC mix: astar, omnetpp, soplex, tonto.
    Mix4,
    /// SPEC mix: GemsFDTD, gromacs, omnetpp, soplex.
    Mix5,
    /// Adversarial: random-access storm — a flood of independent misses
    /// over a span far beyond the LLC, with a thin structured bait so
    /// footprint prefetchers keep firing into traffic they cannot predict.
    StressStorm,
    /// Adversarial: cache-thrashing scans — concurrent strided streams over
    /// working sets larger than the LLC, evicting prefetched lines before
    /// their demand arrives.
    StressThrash,
    /// Adversarial: cold-page pointer chases plus page-keyed object visits
    /// — spatially unpredictable, latency-bound traffic where PC-keyed
    /// events systematically mispredict.
    StressChase,
    /// Adversarial: phase-flipping mixture — the same code paths alternate
    /// between stable dense layouts (which train confident footprints) and
    /// wildly deviating sparse ones (which the trained footprints then
    /// mispredict).
    StressFlip,
}

impl Workload {
    /// All ten workloads in the paper's figure order.
    pub const ALL: [Workload; 10] = [
        Workload::DataServing,
        Workload::SatSolver,
        Workload::Streaming,
        Workload::Zeus,
        Workload::Em3d,
        Workload::Mix1,
        Workload::Mix2,
        Workload::Mix3,
        Workload::Mix4,
        Workload::Mix5,
    ];

    /// The adversarial stress family — deliberately *outside* [`ALL`]
    /// (which reproduces the paper's Table II and stays at ten entries):
    /// these workloads exist to pressure-test throttling and resource
    /// limits, not to reproduce published figures.
    ///
    /// [`ALL`]: Workload::ALL
    pub const STRESS: [Workload; 4] = [
        Workload::StressStorm,
        Workload::StressThrash,
        Workload::StressChase,
        Workload::StressFlip,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Workload::DataServing => "Data Serving",
            Workload::SatSolver => "SAT Solver",
            Workload::Streaming => "Streaming",
            Workload::Zeus => "Zeus",
            Workload::Em3d => "em3d",
            Workload::Mix1 => "Mix 1",
            Workload::Mix2 => "Mix 2",
            Workload::Mix3 => "Mix 3",
            Workload::Mix4 => "Mix 4",
            Workload::Mix5 => "Mix 5",
            Workload::StressStorm => "Stress Storm",
            Workload::StressThrash => "Stress Thrash",
            Workload::StressChase => "Stress Chase",
            Workload::StressFlip => "Stress Flip",
        }
    }

    /// Baseline LLC MPKI reported in Table II. The stress family is not in
    /// the paper; its values are the nominal design targets of the
    /// generators, kept here so every workload can be tabulated uniformly.
    pub fn paper_mpki(self) -> f64 {
        match self {
            Workload::DataServing => 6.7,
            Workload::SatSolver => 1.7,
            Workload::Streaming => 3.9,
            Workload::Zeus => 5.2,
            Workload::Em3d => 32.4,
            Workload::Mix1 => 15.7,
            Workload::Mix2 => 12.5,
            Workload::Mix3 => 12.7,
            Workload::Mix4 => 14.7,
            Workload::Mix5 => 12.6,
            Workload::StressStorm => 60.0,
            Workload::StressThrash => 45.0,
            Workload::StressChase => 40.0,
            Workload::StressFlip => 30.0,
        }
    }

    /// Filesystem-safe identifier (`data-serving`, `mix-1`, ...), used to
    /// name captured-trace directories.
    pub fn slug(self) -> &'static str {
        match self {
            Workload::DataServing => "data-serving",
            Workload::SatSolver => "sat-solver",
            Workload::Streaming => "streaming",
            Workload::Zeus => "zeus",
            Workload::Em3d => "em3d",
            Workload::Mix1 => "mix-1",
            Workload::Mix2 => "mix-2",
            Workload::Mix3 => "mix-3",
            Workload::Mix4 => "mix-4",
            Workload::Mix5 => "mix-5",
            Workload::StressStorm => "stress-storm",
            Workload::StressThrash => "stress-thrash",
            Workload::StressChase => "stress-chase",
            Workload::StressFlip => "stress-flip",
        }
    }

    /// Short description from Table II.
    pub fn description(self) -> &'static str {
        match self {
            Workload::DataServing => "Cassandra Database, 15GB Yahoo! Benchmark",
            Workload::SatSolver => "Cloud9 Parallel Symbolic Execution Engine",
            Workload::Streaming => "Darwin Streaming Server, 7500 Clients",
            Workload::Zeus => "Zeus Web Server v4.3, 16 K Connections",
            Workload::Em3d => "400K Nodes, Degree 2, Span 5, 15% Remote",
            Workload::Mix1 => "lbm, omnetpp, soplex, sphinx3",
            Workload::Mix2 => "lbm, libquantum, sphinx3, zeusmp",
            Workload::Mix3 => "milc, omnetpp, perlbench, soplex",
            Workload::Mix4 => "astar, omnetpp, soplex, tonto",
            Workload::Mix5 => "GemsFDTD, gromacs, omnetpp, soplex",
            Workload::StressStorm => "Adversarial: Random-Access Storm + Bait",
            Workload::StressThrash => "Adversarial: Cache-Thrashing Strided Scans",
            Workload::StressChase => "Adversarial: Cold-Page Chases, Page-Keyed Visits",
            Workload::StressFlip => "Adversarial: Phase-Flipping Layout Mixture",
        }
    }

    /// Parses a [`Workload::slug`] back into its workload — the spelling
    /// used by mix-config files and trace-capture directories. `None` for
    /// anything that is not exactly a known slug, so callers can report
    /// the bad name instead of guessing.
    pub fn from_slug(slug: &str) -> Option<Workload> {
        Workload::ALL
            .into_iter()
            .chain(Workload::STRESS)
            .find(|w| w.slug() == slug)
    }

    /// Builds the instruction source of one core slot.
    ///
    /// The source is a pure function of `(workload, core, seed)` — it does
    /// *not* depend on how many cores the machine has — so a core slot
    /// carries the identical instruction stream whether its neighbors run
    /// the same workload (the homogeneous suite) or different ones (a
    /// declarative mix). That invariance is what makes the mix path
    /// bit-for-bit equal to the classic path at every matching slot.
    pub fn source_for_core(self, core: usize, seed: u64) -> Box<dyn InstrSource> {
        let base_addr = ((core as u64) + 1) << 44;
        let core_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(core as u64 + 1);
        let kernels = match self {
            Workload::DataServing => data_serving(),
            Workload::SatSolver => sat_solver(),
            Workload::Streaming => streaming(),
            Workload::Zeus => zeus(),
            Workload::Em3d => em3d(),
            Workload::Mix1 => spec(MIX1[core % 4]),
            Workload::Mix2 => spec(MIX2[core % 4]),
            Workload::Mix3 => spec(MIX3[core % 4]),
            Workload::Mix4 => spec(MIX4[core % 4]),
            Workload::Mix5 => spec(MIX5[core % 4]),
            Workload::StressStorm => stress_storm(),
            Workload::StressThrash => stress_thrash(),
            Workload::StressChase => stress_chase(),
            Workload::StressFlip => stress_flip(),
        };
        Box::new(WorkloadSource::new(kernels, core_seed, base_addr))
    }

    /// Builds one instruction source per core.
    ///
    /// Server workloads run the same application on every core (distinct
    /// seeds and address spaces); SPEC mixes assign one program per core,
    /// cycling if `cores != 4`.
    pub fn sources(self, cores: usize, seed: u64) -> Vec<Box<dyn InstrSource>> {
        (0..cores)
            .map(|core| self.source_for_core(core, seed))
            .collect()
    }

    /// The SPEC program names of a mix (empty for server workloads).
    pub fn mix_programs(self) -> &'static [SpecProgram] {
        match self {
            Workload::Mix1 => &MIX1,
            Workload::Mix2 => &MIX2,
            Workload::Mix3 => &MIX3,
            Workload::Mix4 => &MIX4,
            Workload::Mix5 => &MIX5,
            _ => &[],
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One SPEC CPU2006 program modeled in the mixes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SpecProgram {
    Lbm,
    Omnetpp,
    Soplex,
    Sphinx3,
    Libquantum,
    Zeusmp,
    Milc,
    Perlbench,
    Astar,
    Tonto,
    GemsFdtd,
    Gromacs,
}

impl SpecProgram {
    /// Lower-case SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            SpecProgram::Lbm => "lbm",
            SpecProgram::Omnetpp => "omnetpp",
            SpecProgram::Soplex => "soplex",
            SpecProgram::Sphinx3 => "sphinx3",
            SpecProgram::Libquantum => "libquantum",
            SpecProgram::Zeusmp => "zeusmp",
            SpecProgram::Milc => "milc",
            SpecProgram::Perlbench => "perlbench",
            SpecProgram::Astar => "astar",
            SpecProgram::Tonto => "tonto",
            SpecProgram::GemsFdtd => "GemsFDTD",
            SpecProgram::Gromacs => "gromacs",
        }
    }
}

const MIX1: [SpecProgram; 4] = [
    SpecProgram::Lbm,
    SpecProgram::Omnetpp,
    SpecProgram::Soplex,
    SpecProgram::Sphinx3,
];
const MIX2: [SpecProgram; 4] = [
    SpecProgram::Lbm,
    SpecProgram::Libquantum,
    SpecProgram::Sphinx3,
    SpecProgram::Zeusmp,
];
const MIX3: [SpecProgram; 4] = [
    SpecProgram::Milc,
    SpecProgram::Omnetpp,
    SpecProgram::Perlbench,
    SpecProgram::Soplex,
];
const MIX4: [SpecProgram; 4] = [
    SpecProgram::Astar,
    SpecProgram::Omnetpp,
    SpecProgram::Soplex,
    SpecProgram::Tonto,
];
const MIX5: [SpecProgram; 4] = [
    SpecProgram::GemsFdtd,
    SpecProgram::Gromacs,
    SpecProgram::Omnetpp,
    SpecProgram::Soplex,
];

// --- Server application profiles -----------------------------------------
//
// Working-set sizing reference: the shared LLC holds 4096 2 KB regions
// (~1024 per core). Page universes far beyond that produce compulsory
// misses; reuse pools within it produce hits. Kernel weights are chosen so
// irregular traffic (chases, random) is a minority of *accesses* — note an
// object/chase episode is one access while a stream episode is a chunk.

fn data_serving() -> Vec<WeightedKernel> {
    vec![
        // Row reads from a huge buffer pool: PC-keyed object layouts with
        // moderate reuse. 16 requests are processed concurrently, each a
        // serialized chain (index entry -> row fields), which bounds MLP
        // and spreads a region's accesses over many hundreds of cycles --
        // the long page residencies the paper attributes to server apps.
        WeightedKernel {
            weight: 16,
            kernel: object(ObjectSpec {
                pcs: 24,
                density: 0.25,
                key: PatternKey::PcDominant { variation: 0.08 },
                reuse: 0.45,
                reuse_pool: 3072,
                pages: 1 << 22,
                noise: 0.005,
                accesses_per_block: 2,
                ops_per_access: 46,
                store_fraction: 0.15,
                concurrency: 4,
                chained: true,
                shuffled: true,
                pc_base: 0x10_000,
            }),
        },
        // Index walks: serialized chases over a large index (~6% of
        // accesses).
        WeightedKernel {
            weight: 1,
            kernel: chase(1 << 16, 1, 60, 0x20_000),
        },
    ]
}

fn sat_solver() -> Vec<WeightedKernel> {
    vec![
        // Clause-database visits: irregular layouts, little cross-page
        // pattern sharing (high variation) -> low metadata redundancy.
        WeightedKernel {
            weight: 12,
            kernel: object(ObjectSpec {
                pcs: 40,
                density: 0.15,
                key: PatternKey::PcDominant { variation: 0.28 },
                reuse: 0.45,
                reuse_pool: 1536,
                pages: 1 << 19,
                noise: 0.02,
                accesses_per_block: 2,
                ops_per_access: 195,
                store_fraction: 0.05,
                concurrency: 4,
                chained: true,
                shuffled: true,
                pc_base: 0x10_000,
            }),
        },
        // Symbolic state exploration: pointer chasing, mostly cache-resident.
        WeightedKernel {
            weight: 2,
            kernel: chase(1 << 17, 1, 260, 0x20_000),
        },
    ]
}

fn streaming() -> Vec<WeightedKernel> {
    vec![
        // Media streaming: concurrently-served file scans, each a
        // serialized packetization chain over ~85%-dense 2 KB chunks (the
        // container format skips metadata blocks). Footprints capture the
        // dense-with-gaps pattern exactly; a single best offset cannot.
        WeightedKernel {
            weight: 12,
            kernel: object(ObjectSpec {
                pcs: 4,
                density: 0.85,
                key: PatternKey::PcDominant { variation: 0.02 },
                reuse: 0.30,
                reuse_pool: 1024,
                pages: 1 << 23,
                noise: 0.005,
                accesses_per_block: 1,
                ops_per_access: 140,
                store_fraction: 0.0,
                concurrency: 6,
                chained: true,
                shuffled: false,
                pc_base: 0x30_000,
            }),
        },
        // Connection metadata: small hot set, mostly hits.
        WeightedKernel {
            weight: 2,
            kernel: random(1 << 12, 4, 150, 0.25, 0x40_000),
        },
    ]
}

fn zeus() -> Vec<WeightedKernel> {
    vec![
        // Web-server buffer management: footprints keyed by the *page*
        // (temporal correlation), not by the code path -> spatial events
        // other than an exact revisit mispredict. Visits are NOT chained:
        // the OoO core already overlaps these misses, which is why the
        // paper sees little spatial-prefetching headroom on Zeus.
        WeightedKernel {
            weight: 10,
            kernel: object(ObjectSpec {
                pcs: 384,
                density: 0.22,
                key: PatternKey::PcDominant { variation: 0.40 },
                reuse: 0.70,
                reuse_pool: 2048,
                pages: 1 << 20,
                noise: 0.02,
                accesses_per_block: 1,
                ops_per_access: 85,
                store_fraction: 0.20,
                concurrency: 12,
                chained: false,
                shuffled: true,
                pc_base: 0x10_000,
            }),
        },
        // Dynamic-content generation: a few serialized request chains
        // with layout-stable templates -- the small latency-bound slice
        // where footprint prefetching visibly helps Zeus.
        WeightedKernel {
            weight: 4,
            kernel: object(ObjectSpec {
                pcs: 8,
                density: 0.25,
                key: PatternKey::PcDominant { variation: 0.20 },
                reuse: 0.45,
                reuse_pool: 1024,
                pages: 1 << 21,
                noise: 0.02,
                accesses_per_block: 1,
                ops_per_access: 85,
                store_fraction: 0.10,
                concurrency: 3,
                chained: true,
                shuffled: true,
                pc_base: 0x30_000,
            }),
        },
        // Independent parallel request processing.
        WeightedKernel {
            weight: 3,
            kernel: random(1 << 18, 1, 120, 0.10, 0x20_000),
        },
    ]
}

fn em3d() -> Vec<WeightedKernel> {
    vec![
        // Dense node scans over a huge graph with fixed node layout:
        // compulsory misses with near-perfect spatial correlation. Each
        // scan is a dependent chain (node -> neighbor lists), so only a
        // few chains' misses overlap: the baseline is heavily
        // latency-bound, which is exactly where spatial prefetching
        // shines (the paper's +285%).
        WeightedKernel {
            weight: 24,
            kernel: object(ObjectSpec {
                pcs: 6,
                density: 0.78,
                key: PatternKey::PcDominant { variation: 0.02 },
                reuse: 0.35,
                reuse_pool: 4096,
                pages: 1 << 23,
                noise: 0.005,
                accesses_per_block: 1,
                ops_per_access: 24,
                store_fraction: 0.10,
                concurrency: 4,
                chained: true,
                shuffled: false,
                pc_base: 0x10_000,
            }),
        },
        // Remote-node reads (15% remote in Table II): independent,
        // spatially unpredictable.
        WeightedKernel {
            weight: 1,
            kernel: random(1 << 21, 1, 30, 0.0, 0x20_000),
        },
    ]
}

// --- Adversarial stress profiles ------------------------------------------
//
// These do not model any real application; each is designed to put a
// specific kind of pressure on the prefetcher and the memory system's
// resource limits (prefetch queue, MSHRs, DRAM bandwidth). They are the
// workload side of the throttling experiments: traffic on which an
// unthrottled aggressive prefetcher actively *hurts*, so that graceful
// degradation is measurable rather than hypothetical.

fn stress_storm() -> Vec<WeightedKernel> {
    vec![
        // The storm: high-rate independent misses over a span far beyond
        // the LLC. Untrainable (one-block footprints never reach the
        // history), it exists purely to keep demand traffic saturating the
        // DRAM channel so every wasted prefetch transfer delays a demand.
        WeightedKernel {
            weight: 5,
            kernel: random(1 << 22, 8, 10, 0.10, 0x80_000),
        },
        // The bait: sparse footprints whose per-page shift (high variation)
        // defeats the short event's cross-page generalization, with almost
        // no exact revisits (low reuse) for the long event to rescue.
        // History hits stay frequent — few PCs, recurring trigger offsets —
        // so the prefetcher keeps firing bursts that are mostly wrong.
        WeightedKernel {
            weight: 4,
            kernel: object(ObjectSpec {
                pcs: 4,
                density: 0.25,
                key: PatternKey::PcDominant { variation: 0.90 },
                reuse: 0.05,
                reuse_pool: 256,
                pages: 1 << 22,
                noise: 0.25,
                accesses_per_block: 1,
                ops_per_access: 6,
                store_fraction: 0.0,
                concurrency: 8,
                chained: false,
                shuffled: true,
                pc_base: 0x81_000,
            }),
        },
    ]
}

fn stress_thrash() -> Vec<WeightedKernel> {
    // Three concurrent strided scans whose combined working set is several
    // times the LLC: lines (prefetched ones included) are evicted long
    // before reuse, so prefetch "coverage" decays into pure bandwidth and
    // queue pressure. Low op padding keeps the access rate high.
    vec![
        WeightedKernel {
            weight: 1,
            kernel: stream(1, 2, 1 << 18, 10, 0.25, false, 0x82_000),
        },
        WeightedKernel {
            weight: 1,
            kernel: stream(3, 2, 1 << 18, 10, 0.25, false, 0x83_000),
        },
        WeightedKernel {
            weight: 1,
            kernel: stream(7, 2, 1 << 18, 10, 0.25, false, 0x84_000),
        },
    ]
}

fn stress_chase() -> Vec<WeightedKernel> {
    vec![
        // Serialized chases over cold pages: latency-bound and spatially
        // unpredictable — the traffic that cannot be helped, only harmed.
        WeightedKernel {
            weight: 3,
            kernel: chase(1 << 22, 4, 20, 0x85_000),
        },
        // Page-keyed visits: the footprint is a property of the page, not
        // the code path, so every PC-keyed short event generalizes wrongly
        // (two random sparse patterns overlap ~density) and only exact
        // revisits — rare at this reuse — predict anything.
        WeightedKernel {
            weight: 5,
            kernel: object(ObjectSpec {
                pcs: 64,
                density: 0.25,
                key: PatternKey::PageOnly,
                reuse: 0.10,
                reuse_pool: 512,
                pages: 1 << 22,
                noise: 0.05,
                accesses_per_block: 1,
                ops_per_access: 8,
                store_fraction: 0.05,
                concurrency: 6,
                chained: false,
                shuffled: true,
                pc_base: 0x86_000,
            }),
        },
    ]
}

fn stress_flip() -> Vec<WeightedKernel> {
    // Both kernels deliberately share one PC base (same code paths, same
    // address space): the stable kernel trains clean, confident footprints
    // which the deviating kernel then violates, so the history table is
    // perpetually poisoned by its own recent successes.
    vec![
        WeightedKernel {
            weight: 2,
            kernel: object(ObjectSpec {
                pcs: 4,
                density: 0.25,
                key: PatternKey::PcDominant { variation: 0.02 },
                reuse: 0.30,
                reuse_pool: 512,
                pages: 1 << 22,
                noise: 0.02,
                accesses_per_block: 1,
                ops_per_access: 6,
                store_fraction: 0.05,
                concurrency: 6,
                chained: false,
                shuffled: false,
                pc_base: 0x87_000,
            }),
        },
        WeightedKernel {
            weight: 6,
            kernel: object(ObjectSpec {
                pcs: 4,
                density: 0.25,
                key: PatternKey::PcDominant { variation: 0.95 },
                reuse: 0.05,
                reuse_pool: 256,
                pages: 1 << 22,
                noise: 0.30,
                accesses_per_block: 1,
                ops_per_access: 6,
                store_fraction: 0.05,
                concurrency: 6,
                chained: false,
                shuffled: true,
                pc_base: 0x87_000,
            }),
        },
    ]
}

// --- SPEC CPU2006 program profiles ----------------------------------------

fn spec(prog: SpecProgram) -> Vec<WeightedKernel> {
    match prog {
        SpecProgram::Lbm => vec![
            // Lattice-Boltzmann stencil: several concurrent dense streams
            // with stores.
            WeightedKernel {
                weight: 2,
                kernel: stream(1, 1, 1 << 14, 42, 0.35, true, 0x50_000),
            },
            WeightedKernel {
                weight: 2,
                kernel: stream(1, 1, 1 << 14, 42, 0.25, true, 0x66_000),
            },
            WeightedKernel {
                weight: 2,
                kernel: stream(2, 1, 1 << 15, 42, 0.20, true, 0x51_000),
            },
            WeightedKernel {
                weight: 2,
                kernel: stream(1, 1, 1 << 14, 42, 0.20, true, 0x68_000),
            },
            WeightedKernel {
                weight: 2,
                kernel: stream(1, 1, 1 << 14, 42, 0.20, true, 0x69_000),
            },
        ],
        SpecProgram::Libquantum => vec![
            WeightedKernel {
                weight: 1,
                kernel: stream(1, 1, 1 << 14, 48, 0.15, true, 0x52_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(1, 1, 1 << 14, 48, 0.15, true, 0x63_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(1, 1, 1 << 14, 48, 0.15, true, 0x67_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(1, 1, 1 << 14, 48, 0.15, true, 0x6a_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(1, 1, 1 << 14, 48, 0.15, true, 0x6b_000),
            },
        ],
        SpecProgram::Omnetpp => vec![
            // Discrete event simulation: heap-allocated event objects,
            // pointer-heavy.
            WeightedKernel {
                weight: 1,
                kernel: chase(1 << 18, 1, 60, 0x53_000),
            },
            WeightedKernel {
                weight: 4,
                kernel: object(ObjectSpec {
                    pcs: 32,
                    density: 0.12,
                    key: PatternKey::PcDominant { variation: 0.12 },
                    reuse: 0.45,
                    reuse_pool: 2048,
                    pages: 1 << 20,
                    noise: 0.05,
                    accesses_per_block: 1,
                    ops_per_access: 60,
                    store_fraction: 0.20,
                    concurrency: 4,
                    chained: true,
                    shuffled: true,
                    pc_base: 0x54_000,
                }),
            },
        ],
        SpecProgram::Soplex => vec![
            // Sparse LP solver: strided column sweeps + irregular row picks.
            WeightedKernel {
                weight: 16,
                kernel: stream(3, 1, 49152, 52, 0.10, true, 0x55_000),
            },
            WeightedKernel {
                weight: 16,
                kernel: stream(3, 1, 49152, 52, 0.10, true, 0x71_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: random(1 << 19, 4, 55, 0.10, 0x56_000),
            },
        ],
        SpecProgram::Sphinx3 => vec![
            // Speech decoding: acoustic-model object visits with good reuse.
            WeightedKernel {
                weight: 1,
                kernel: object(ObjectSpec {
                    pcs: 20,
                    density: 0.35,
                    key: PatternKey::PcDominant { variation: 0.15 },
                    reuse: 0.45,
                    reuse_pool: 2048,
                    pages: 1 << 21,
                    noise: 0.03,
                    accesses_per_block: 1,
                    ops_per_access: 55,
                    store_fraction: 0.05,
                    concurrency: 8,
                    chained: true,
                    shuffled: false,
                    pc_base: 0x57_000,
                }),
            },
        ],
        SpecProgram::Zeusmp => vec![
            WeightedKernel {
                weight: 1,
                kernel: stream(2, 1, 1 << 15, 85, 0.25, true, 0x58_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(2, 1, 1 << 15, 85, 0.25, true, 0x64_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(2, 1, 1 << 15, 85, 0.25, true, 0x6c_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(2, 1, 1 << 15, 85, 0.25, true, 0x6d_000),
            },
        ],
        SpecProgram::Milc => vec![
            WeightedKernel {
                weight: 1,
                kernel: stream(4, 1, 1 << 16, 55, 0.20, true, 0x59_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(4, 1, 1 << 16, 55, 0.20, true, 0x65_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(4, 1, 1 << 16, 55, 0.20, true, 0x6e_000),
            },
            WeightedKernel {
                weight: 1,
                kernel: stream(4, 1, 1 << 16, 55, 0.20, true, 0x6f_000),
            },
        ],
        SpecProgram::Perlbench => vec![
            // Interpreter: small hot working set, low MPKI.
            WeightedKernel {
                weight: 1,
                kernel: random(1 << 13, 16, 90, 0.20, 0x5a_000),
            },
            WeightedKernel {
                weight: 2,
                kernel: chase(1 << 17, 1, 110, 0x5b_000),
            },
        ],
        SpecProgram::Astar => vec![
            // Path-finding: grid-neighborhood objects + open-list chasing.
            WeightedKernel {
                weight: 1,
                kernel: chase(1 << 18, 1, 60, 0x5c_000),
            },
            WeightedKernel {
                weight: 4,
                kernel: object(ObjectSpec {
                    pcs: 12,
                    density: 0.20,
                    key: PatternKey::PcDominant { variation: 0.10 },
                    reuse: 0.20,
                    reuse_pool: 2048,
                    pages: 1 << 20,
                    noise: 0.04,
                    accesses_per_block: 1,
                    ops_per_access: 55,
                    store_fraction: 0.10,
                    concurrency: 4,
                    chained: true,
                    shuffled: true,
                    pc_base: 0x5d_000,
                }),
            },
        ],
        SpecProgram::Tonto => vec![
            // Quantum chemistry: blocked dense kernels, decent locality.
            WeightedKernel {
                weight: 4,
                kernel: object(ObjectSpec {
                    pcs: 10,
                    density: 0.40,
                    key: PatternKey::PcDominant { variation: 0.08 },
                    reuse: 0.55,
                    reuse_pool: 2048,
                    pages: 1 << 19,
                    noise: 0.02,
                    accesses_per_block: 2,
                    ops_per_access: 95,
                    store_fraction: 0.15,
                    concurrency: 8,
                    chained: true,
                    shuffled: false,
                    pc_base: 0x5e_000,
                }),
            },
            WeightedKernel {
                weight: 16,
                kernel: stream(1, 1, 1 << 14, 110, 0.10, true, 0x5f_000),
            },
        ],
        SpecProgram::GemsFdtd => vec![
            // FDTD solver: multiple strided field sweeps.
            WeightedKernel {
                weight: 16,
                kernel: stream(1, 1, 1 << 14, 55, 0.30, true, 0x60_000),
            },
            WeightedKernel {
                weight: 4,
                kernel: stream(8, 1, 1 << 17, 55, 0.15, true, 0x61_000),
            },
            WeightedKernel {
                weight: 8,
                kernel: stream(1, 1, 1 << 14, 55, 0.20, true, 0x70_000),
            },
        ],
        SpecProgram::Gromacs => vec![
            // Molecular dynamics: neighbor-list object visits, good reuse.
            WeightedKernel {
                weight: 1,
                kernel: object(ObjectSpec {
                    pcs: 14,
                    density: 0.30,
                    key: PatternKey::PcDominant { variation: 0.10 },
                    reuse: 0.50,
                    reuse_pool: 2048,
                    pages: 1 << 19,
                    noise: 0.03,
                    accesses_per_block: 1,
                    ops_per_access: 85,
                    store_fraction: 0.10,
                    concurrency: 8,
                    chained: true,
                    shuffled: false,
                    pc_base: 0x62_000,
                }),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_workload_once() {
        assert_eq!(Workload::ALL.len(), 10);
        let mut names: Vec<&str> = Workload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn stress_family_is_disjoint_and_uniquely_named() {
        assert_eq!(Workload::STRESS.len(), 4);
        let stress: Vec<&str> = Workload::STRESS.iter().map(|w| w.name()).collect();
        let mut unique = stress.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        for w in Workload::ALL {
            assert!(
                !stress.contains(&w.name()),
                "{w} appears in both ALL and STRESS"
            );
        }
    }

    #[test]
    fn stress_sources_build_and_are_deterministic() {
        for w in Workload::STRESS {
            let s = w.sources(2, 9);
            assert_eq!(s.len(), 2, "{w}");
            let mut a = w.sources(1, 9);
            let mut b = w.sources(1, 9);
            for _ in 0..5000 {
                assert_eq!(a[0].next_instr(), b[0].next_instr(), "{w}");
            }
        }
    }

    #[test]
    fn paper_mpki_matches_table2() {
        assert_eq!(Workload::Em3d.paper_mpki(), 32.4);
        assert_eq!(Workload::SatSolver.paper_mpki(), 1.7);
        assert_eq!(Workload::Mix1.paper_mpki(), 15.7);
    }

    #[test]
    fn from_slug_round_trips_every_workload() {
        for w in Workload::ALL.into_iter().chain(Workload::STRESS) {
            assert_eq!(Workload::from_slug(w.slug()), Some(w), "{w}");
        }
        assert_eq!(Workload::from_slug("not-a-workload"), None);
        assert_eq!(
            Workload::from_slug("Data-Serving"),
            None,
            "slugs are case-sensitive"
        );
        assert_eq!(Workload::from_slug(""), None);
    }

    #[test]
    fn source_for_core_matches_sources_slot() {
        let whole = Workload::Mix3.sources(4, 42);
        for (core, from_sources) in whole.into_iter().enumerate() {
            let mut from_sources = from_sources;
            let mut slot = Workload::Mix3.source_for_core(core, 42);
            for _ in 0..2000 {
                assert_eq!(slot.next_instr(), from_sources.next_instr(), "core {core}");
            }
        }
    }

    #[test]
    fn sources_builds_one_per_core() {
        for w in Workload::ALL {
            let s = w.sources(4, 1);
            assert_eq!(s.len(), 4, "{w}");
        }
    }

    #[test]
    fn sources_are_deterministic() {
        let mut a = Workload::DataServing.sources(2, 7);
        let mut b = Workload::DataServing.sources(2, 7);
        for _ in 0..5000 {
            assert_eq!(a[0].next_instr(), b[0].next_instr());
            assert_eq!(a[1].next_instr(), b[1].next_instr());
        }
    }

    #[test]
    fn cores_have_disjoint_address_spaces() {
        use bingo_sim::{Instr, InstrSource};
        let mut s = Workload::Streaming.sources(2, 3);
        let collect_addrs = |src: &mut Box<dyn InstrSource>| {
            let mut addrs = Vec::new();
            for _ in 0..20_000 {
                match src.next_instr() {
                    Instr::Load { addr, .. } | Instr::Store { addr, .. } => addrs.push(addr.raw()),
                    Instr::Op => {}
                }
            }
            addrs
        };
        let (a, b) = {
            let a = collect_addrs(&mut s[0]);
            let b = collect_addrs(&mut s[1]);
            (a, b)
        };
        let max_a = a.iter().max().expect("core 0 issued memory accesses");
        let min_b = b.iter().min().expect("core 1 issued memory accesses");
        assert!(max_a < min_b, "core address spaces overlap");
    }

    #[test]
    fn mixes_assign_four_programs() {
        assert_eq!(Workload::Mix1.mix_programs().len(), 4);
        assert_eq!(Workload::Mix1.mix_programs()[0], SpecProgram::Lbm);
        assert!(Workload::Em3d.mix_programs().is_empty());
    }

    #[test]
    fn spec_profiles_all_construct() {
        for p in [
            SpecProgram::Lbm,
            SpecProgram::Omnetpp,
            SpecProgram::Soplex,
            SpecProgram::Sphinx3,
            SpecProgram::Libquantum,
            SpecProgram::Zeusmp,
            SpecProgram::Milc,
            SpecProgram::Perlbench,
            SpecProgram::Astar,
            SpecProgram::Tonto,
            SpecProgram::GemsFdtd,
            SpecProgram::Gromacs,
        ] {
            assert!(!spec(p).is_empty(), "{}", p.name());
        }
    }
}
