//! Trace-driven workflow: record a workload's instruction stream once,
//! save it, profile its spatial structure offline, and replay it against
//! two prefetchers — the ChampSim-style methodology this library supports
//! end-to-end.
//!
//! ```sh
//! cargo run --release --example trace_workflow
//! ```

use bingo_repro::prefetcher::{Bingo, BingoConfig, EventKind, SpatialProfiler};
use bingo_repro::sim::{
    record, Instr, NoPrefetcher, Prefetcher, System, SystemConfig, Trace, TraceSource,
};
use bingo_repro::workloads::Workload;

fn main() {
    // 1. Record 400K instructions of the Data Serving workload.
    let mut sources = Workload::DataServing.sources(1, 42);
    let trace = record(sources[0].as_mut(), 400_000);
    println!(
        "recorded {} instructions ({} memory accesses)",
        trace.len(),
        trace.memory_accesses()
    );

    // 2. Round-trip through the binary format (to a buffer here; a file in
    //    a real workflow).
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize trace");
    println!("serialized: {} KB", bytes.len() / 1024);
    let trace = Trace::read_from(bytes.as_slice()).expect("deserialize trace");

    // 3. Profile the spatial structure offline: how predictable is this
    //    stream, per trigger event, before any prefetcher runs?
    let mut profiler = SpatialProfiler::new(32, 64);
    for instr in trace.instrs() {
        match instr {
            Instr::Load { pc, addr, .. } | Instr::Store { pc, addr } => {
                profiler.observe_parts(pc.raw(), addr.block().index());
            }
            Instr::Op => {}
        }
    }
    let report = profiler.finish();
    println!(
        "\nspatial profile: {} residencies, mean footprint density {:.1}%",
        report.residencies,
        report.mean_density() * 100.0
    );
    for kind in [EventKind::PcAddress, EventKind::PcOffset, EventKind::Offset] {
        let e = report.event(kind);
        println!(
            "  {:<10}  recurrence {:5.1}%   footprint similarity {:5.1}%",
            kind.label(),
            e.match_probability() * 100.0,
            e.mean_similarity() * 100.0
        );
    }

    // 4. Replay the identical stream against a baseline and Bingo.
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 1;
    let run = |make: Box<dyn Fn() -> Box<dyn Prefetcher>>, t: Trace| {
        System::new(
            cfg,
            vec![Box::new(TraceSource::new(t))],
            vec![make()],
            150_000,
        )
        .with_warmup(100_000)
        .run()
    };
    let base = run(Box::new(|| Box::new(NoPrefetcher)), trace.clone());
    let bingo = run(
        Box::new(|| Box::new(Bingo::new(BingoConfig::paper()))),
        trace,
    );
    println!("\n--- baseline ---\n{base}");
    println!("\n--- bingo ---\n{bingo}");
    println!(
        "\nspeedup from the identical replayed stream: {:+.1}%",
        (bingo.speedup_over(&base) - 1.0) * 100.0
    );
}
