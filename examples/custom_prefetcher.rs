//! Extending the framework: implement your own prefetcher against the
//! `bingo_sim::Prefetcher` trait and race it against Bingo.
//!
//! The example builds a "region rounding" prefetcher — on every demand
//! miss it fetches the rest of the aligned 2 KB region (footprint = all
//! ones). It is a useful foil: maximal coverage on dense scans, terrible
//! accuracy on sparse ones, which is exactly the gap footprint *learning*
//! closes.
//!
//! ```sh
//! cargo run --release --example custom_prefetcher
//! ```

use bingo_repro::prefetcher::{Bingo, BingoConfig};
use bingo_repro::sim::{
    AccessInfo, BlockAddr, CoverageReport, NoPrefetcher, Prefetcher, RegionGeometry, SimResult,
    System, SystemConfig,
};
use bingo_repro::workloads::Workload;

/// Prefetches every remaining block of the accessed region on a miss.
#[derive(Debug, Default)]
struct RegionRounder {
    geometry: RegionGeometry,
}

impl Prefetcher for RegionRounder {
    fn name(&self) -> &str {
        "RegionRounder"
    }

    fn on_access(&mut self, info: &AccessInfo, out: &mut Vec<BlockAddr>) {
        if info.hit {
            return;
        }
        for offset in 0..self.geometry.blocks_per_region() as u32 {
            if offset != info.offset {
                out.push(self.geometry.block_at(info.region, offset));
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        0 // stateless!
    }
}

fn run(workload: Workload, make: &dyn Fn() -> Box<dyn Prefetcher>) -> SimResult {
    let cfg = SystemConfig::paper();
    System::with_prefetchers(cfg, workload.sources(cfg.cores, 42), |_| make(), 300_000)
        .with_warmup(400_000)
        .run()
}

fn main() {
    for workload in [Workload::Em3d, Workload::DataServing] {
        println!("=== {workload} ===");
        let baseline = run(workload, &|| Box::new(NoPrefetcher));
        for (name, make) in [
            (
                "RegionRounder",
                Box::new(|| Box::new(RegionRounder::default()) as Box<dyn Prefetcher>)
                    as Box<dyn Fn() -> Box<dyn Prefetcher>>,
            ),
            (
                "Bingo",
                Box::new(|| Box::new(Bingo::new(BingoConfig::paper())) as Box<dyn Prefetcher>),
            ),
        ] {
            let r = run(workload, make.as_ref());
            let c = CoverageReport::from_runs(&r, &baseline);
            println!(
                "{name:>14}: coverage {:5.1}%  overprediction {:6.1}%  accuracy {:5.1}%  speedup {:+.1}%",
                c.coverage * 100.0,
                c.overprediction * 100.0,
                c.accuracy * 100.0,
                (r.speedup_over(&baseline) - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("Dense scans (em3d) reward blind region rounding; sparse server");
    println!("footprints (Data Serving) punish it — learning the footprint");
    println!("keeps the coverage and drops the waste.");
}
