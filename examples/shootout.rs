//! Prefetcher shootout: all six prefetchers of the paper's comparison on a
//! server workload (Data Serving), printing coverage, overprediction,
//! accuracy, and speedup — a miniature of Figs. 7 and 8.
//!
//! ```sh
//! cargo run --release --example shootout [workload]
//! ```
//!
//! `workload` is one of: data-serving, sat-solver, streaming, zeus, em3d,
//! mix1..mix5 (default: data-serving).

use bingo_repro::baselines::{
    Ampm, AmpmConfig, Bop, BopConfig, Sms, Spp, SppConfig, Vldp, VldpConfig,
};
use bingo_repro::prefetcher::{Bingo, BingoConfig};
use bingo_repro::sim::{CoverageReport, NoPrefetcher, Prefetcher, SimResult, System, SystemConfig};
use bingo_repro::workloads::Workload;

fn parse_workload(name: &str) -> Option<Workload> {
    Some(match name.to_ascii_lowercase().as_str() {
        "data-serving" => Workload::DataServing,
        "sat-solver" => Workload::SatSolver,
        "streaming" => Workload::Streaming,
        "zeus" => Workload::Zeus,
        "em3d" => Workload::Em3d,
        "mix1" => Workload::Mix1,
        "mix2" => Workload::Mix2,
        "mix3" => Workload::Mix3,
        "mix4" => Workload::Mix4,
        "mix5" => Workload::Mix5,
        _ => return None,
    })
}

fn run(workload: Workload, make: &dyn Fn() -> Box<dyn Prefetcher>) -> SimResult {
    let cfg = SystemConfig::paper();
    System::with_prefetchers(cfg, workload.sources(cfg.cores, 42), |_| make(), 400_000)
        .with_warmup(600_000)
        .run()
}

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|a| parse_workload(&a))
        .unwrap_or(Workload::DataServing);
    println!("workload: {workload} — {}\n", workload.description());

    let baseline = run(workload, &|| Box::new(NoPrefetcher));
    println!(
        "baseline: IPC {:.3}, {} LLC misses (MPKI {:.1})\n",
        baseline.aggregate_ipc(),
        baseline.llc.demand_misses,
        baseline.llc_mpki()
    );
    println!(
        "{:>6}  {:>9}  {:>9}  {:>9}  {:>8}",
        "", "coverage", "overpred", "accuracy", "speedup"
    );
    type MakePrefetcher = Box<dyn Fn() -> Box<dyn Prefetcher>>;
    let contenders: Vec<(&str, MakePrefetcher)> = vec![
        ("BOP", Box::new(|| Box::new(Bop::new(BopConfig::paper())))),
        ("SPP", Box::new(|| Box::new(Spp::new(SppConfig::paper())))),
        ("VLDP", Box::new(|| Box::new(Vldp::new(VldpConfig::paper())))),
        ("AMPM", Box::new(|| Box::new(Ampm::new(AmpmConfig::paper())))),
        ("SMS", Box::new(|| Box::new(Sms::default()))),
        ("Bingo", Box::new(|| Box::new(Bingo::new(BingoConfig::paper())))),
    ];
    for (name, make) in &contenders {
        let r = run(workload, make.as_ref());
        let c = CoverageReport::from_runs(&r, &baseline);
        println!(
            "{:>6}  {:>8.1}%  {:>8.1}%  {:>8.1}%  {:>7.1}%",
            name,
            c.coverage * 100.0,
            c.overprediction * 100.0,
            c.accuracy * 100.0,
            (r.speedup_over(&baseline) - 1.0) * 100.0
        );
    }
}
