//! Prefetcher shootout: all six prefetchers of the paper's comparison on a
//! server workload (Data Serving), printing coverage, overprediction,
//! accuracy, and speedup — a miniature of Figs. 7 and 8.
//!
//! ```sh
//! cargo run --release --example shootout [workload]
//! ```
//!
//! `workload` is one of: data-serving, sat-solver, streaming, zeus, em3d,
//! mix1..mix5 (default: data-serving). The six cells run in parallel; set
//! `BINGO_JOBS` to bound the worker count.

use bingo_repro::bench::{ParallelHarness, PrefetcherKind, RunScale};
use bingo_repro::workloads::Workload;

fn parse_workload(name: &str) -> Option<Workload> {
    Some(match name.to_ascii_lowercase().as_str() {
        "data-serving" => Workload::DataServing,
        "sat-solver" => Workload::SatSolver,
        "streaming" => Workload::Streaming,
        "zeus" => Workload::Zeus,
        "em3d" => Workload::Em3d,
        "mix1" => Workload::Mix1,
        "mix2" => Workload::Mix2,
        "mix3" => Workload::Mix3,
        "mix4" => Workload::Mix4,
        "mix5" => Workload::Mix5,
        _ => return None,
    })
}

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|a| parse_workload(&a))
        .unwrap_or(Workload::DataServing);
    println!("workload: {workload} — {}\n", workload.description());

    let scale = RunScale {
        instructions_per_core: 400_000,
        warmup_per_core: 600_000,
        seed: 42,
    };
    let mut harness = ParallelHarness::new(scale).quiet();
    let evals = harness.evaluate_all(&[workload], &PrefetcherKind::HEADLINE);

    let baseline = &evals[0].baseline;
    println!(
        "baseline: IPC {:.3}, {} LLC misses (MPKI {:.1})\n",
        baseline.aggregate_ipc(),
        baseline.llc.demand_misses,
        baseline.llc_mpki()
    );
    println!(
        "{:>6}  {:>9}  {:>9}  {:>9}  {:>8}",
        "", "coverage", "overpred", "accuracy", "speedup"
    );
    for e in &evals {
        println!(
            "{:>6}  {:>8.1}%  {:>8.1}%  {:>8.1}%  {:>7.1}%",
            e.kind.name(),
            e.coverage.coverage * 100.0,
            e.coverage.overprediction * 100.0,
            e.coverage.accuracy * 100.0,
            (e.speedup - 1.0) * 100.0
        );
    }
}
