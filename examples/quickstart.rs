//! Quickstart: simulate one core streaming through memory, with and
//! without Bingo, and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bingo_repro::prefetcher::{Bingo, BingoConfig};
use bingo_repro::sim::{NoPrefetcher, Prefetcher, System, SystemConfig};
use bingo_repro::workloads::Workload;

fn main() {
    // A scaled-down single-core system (8 KB L1, 256 KB LLC) so cache
    // behavior shows up within a few hundred thousand instructions.
    let mut cfg = SystemConfig::tiny();
    cfg.cores = 1;
    let instructions = 300_000;
    let workload = Workload::Streaming;

    println!("workload: {workload} — {}", workload.description());

    let baseline = System::new(
        cfg,
        workload.sources(cfg.cores, 42),
        vec![Box::new(NoPrefetcher)],
        instructions,
    )
    .run();

    let bingo = Bingo::new(BingoConfig::paper());
    println!(
        "prefetcher: {} ({} KB of metadata)",
        bingo.name(),
        bingo.storage_bits() / 8 / 1024
    );
    let prefetched = System::new(
        cfg,
        workload.sources(cfg.cores, 42),
        vec![Box::new(bingo)],
        instructions,
    )
    .run();

    println!();
    println!(
        "baseline : IPC {:.3}  LLC misses {:6}  MPKI {:.2}",
        baseline.aggregate_ipc(),
        baseline.llc.demand_misses,
        baseline.llc_mpki()
    );
    println!(
        "bingo    : IPC {:.3}  LLC misses {:6}  MPKI {:.2}",
        prefetched.aggregate_ipc(),
        prefetched.llc.demand_misses,
        prefetched.llc_mpki()
    );
    let speedup = prefetched.speedup_over(&baseline);
    let coverage = (baseline.llc.demand_misses - prefetched.llc.demand_misses) as f64
        / baseline.llc.demand_misses as f64;
    println!();
    println!(
        "speedup {:.2}x ({:+.1}%), miss coverage {:.1}%, prefetch accuracy {:.1}%",
        speedup,
        (speedup - 1.0) * 100.0,
        coverage * 100.0,
        prefetched.llc.accuracy() * 100.0
    );
}
