//! Graph-scan scenario: the `em3d`-style workload of the paper's headline
//! result (+285% over no prefetching).
//!
//! Dense node records are scanned along serialized dependency chains over
//! a graph far larger than the LLC — nearly every access is a compulsory
//! miss, but the footprints recur per code path, so a spatial prefetcher
//! that generalizes across regions (`PC+Offset`) erases most of the
//! latency. This example compares Bingo against SMS and BOP on the full
//! 4-core Table I system.
//!
//! ```sh
//! cargo run --release --example graph_scan
//! ```

use bingo_repro::baselines::{Bop, BopConfig, Sms};
use bingo_repro::prefetcher::{Bingo, BingoConfig};
use bingo_repro::sim::{NoPrefetcher, Prefetcher, SimResult, System, SystemConfig};
use bingo_repro::workloads::Workload;

fn run(make: impl Fn() -> Box<dyn Prefetcher>) -> SimResult {
    let cfg = SystemConfig::paper();
    System::with_prefetchers(
        cfg,
        Workload::Em3d.sources(cfg.cores, 42),
        |_| make(),
        400_000,
    )
    .with_warmup(400_000)
    .run()
}

fn main() {
    println!("workload: em3d — {}", Workload::Em3d.description());
    println!(
        "system: 4-core Table I configuration, 400K warmup + 400K measured instructions/core\n"
    );

    let baseline = run(|| Box::new(NoPrefetcher));
    println!(
        "{:>8}  {:>6}  {:>10}  {:>8}  coverage",
        "", "IPC", "LLC misses", "speedup"
    );
    println!(
        "{:>8}  {:>6.3}  {:>10}  {:>8}  --",
        "none",
        baseline.aggregate_ipc(),
        baseline.llc.demand_misses,
        "--"
    );
    type MakePrefetcher = Box<dyn Fn() -> Box<dyn Prefetcher>>;
    let contenders: Vec<(&str, MakePrefetcher)> = vec![
        ("BOP", Box::new(|| Box::new(Bop::new(BopConfig::paper())))),
        ("SMS", Box::new(|| Box::new(Sms::default()))),
        (
            "Bingo",
            Box::new(|| Box::new(Bingo::new(BingoConfig::paper()))),
        ),
    ];
    for (name, make) in contenders {
        let r = run(make.as_ref());
        let cov = (baseline
            .llc
            .demand_misses
            .saturating_sub(r.llc.demand_misses)) as f64
            / baseline.llc.demand_misses as f64;
        println!(
            "{:>8}  {:>6.3}  {:>10}  {:>7.2}x  {:>7.1}%",
            name,
            r.aggregate_ipc(),
            r.llc.demand_misses,
            r.speedup_over(&baseline),
            cov * 100.0
        );
    }
    println!("\nExpected shape (paper Fig. 8, em3d): BOP < SMS < Bingo, with Bingo");
    println!("covering ~90% of misses by replaying learned node-record footprints.");
}
