#!/usr/bin/env bash
# Full pre-merge check: build, tests, formatting, lints.
# Usage: scripts/check.sh  (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q --features audit"
cargo test --workspace -q --features audit

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> all checks passed"
