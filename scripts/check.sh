#!/usr/bin/env bash
# Full pre-merge check: build, tests, formatting, lints.
# Usage: scripts/check.sh  (run from anywhere inside the repo)
#
# Opt-in: BINGO_BENCH=1 scripts/check.sh additionally runs the bench
# binaries and gates them against the committed BENCH_simulator.json with
# the same threshold CI uses (override with BINGO_BENCH_THRESHOLD).
set -euo pipefail
cd "$(dirname "$0")/.."

# ISSUE.md describes the PR in flight; sessions that land it may remove
# the file, so its absence is a warning, never a failure.
if [[ ! -f ISSUE.md ]]; then
    echo "warning: ISSUE.md not found (no PR brief in flight); continuing" >&2
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q --features audit"
cargo test --workspace -q --features audit

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

if [[ "${BINGO_BENCH:-0}" == "1" ]]; then
    echo "==> cargo bench -p bingo-bench (perf trajectory vs BENCH_simulator.json)"
    # Absolute path: cargo bench runs the bench executables with the
    # package directory (crates/bench) as CWD, not the workspace root.
    # Three best-merged runs accumulate a candidate measured the same way
    # the committed snapshot was (per-key minima over runs, which
    # contention can only inflate).
    rm -f target/bench/candidate.json
    for _ in 1 2 3; do
        BINGO_BENCH_JSON="$PWD/target/bench/candidate.json" BINGO_BENCH_MERGE=best \
            cargo bench -p bingo-bench
    done
    cargo run --release -p bingo-bench --bin bench_compare -- \
        --snapshot BENCH_simulator.json --candidate target/bench/candidate.json
fi

echo "==> all checks passed"
