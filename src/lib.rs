//! # bingo-repro — umbrella crate
//!
//! Reproduction of *Bingo Spatial Data Prefetcher* (Bakhshalipour et al.,
//! HPCA 2019). This crate re-exports the workspace members under one roof
//! and hosts the cross-crate integration tests (`tests/`) and runnable
//! examples (`examples/`).
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`sim`] | cycle-level multi-core cache/memory simulator (Table I system) |
//! | [`prefetcher`] | the Bingo prefetcher and the multi-event TAGE-like predictors |
//! | [`baselines`] | BOP, SPP, VLDP, AMPM, SMS, stride |
//! | [`workloads`] | synthetic generators for the Table II workload suite |
//! | [`trace`] | hardened trace capture/replay: framed format, CRC32, quarantine |
//! | [`bench`] | experiment harness: parallel (workload × prefetcher) runner |
//!
//! ## Quickstart
//!
//! ```
//! use bingo_repro::prefetcher::{Bingo, BingoConfig};
//! use bingo_repro::sim::{NoPrefetcher, System, SystemConfig};
//! use bingo_repro::workloads::Workload;
//!
//! let mut cfg = SystemConfig::tiny();
//! cfg.cores = 1;
//! let base = System::new(
//!     cfg,
//!     Workload::Em3d.sources(1, 42),
//!     vec![Box::new(NoPrefetcher)],
//!     400_000,
//! )
//! .run();
//! let with_bingo = System::new(
//!     cfg,
//!     Workload::Em3d.sources(1, 42),
//!     vec![Box::new(Bingo::new(BingoConfig::paper()))],
//!     400_000,
//! )
//! .run();
//! assert!(with_bingo.llc.demand_misses < base.llc.demand_misses);
//! ```

#![warn(missing_docs)]

pub use bingo as prefetcher;
pub use bingo_baselines as baselines;
pub use bingo_bench as bench;
pub use bingo_sim as sim;
pub use bingo_trace as trace;
pub use bingo_workloads as workloads;
