//! Capture → replay round-trip determinism: for every synthetic workload
//! (the Table II suite *and* the adversarial stress workloads), recording
//! the generator streams to framed `.btrc` files and replaying them
//! through the simulator produces a [`SimResult`] bit-for-bit equal to
//! running the live generators — the property that makes captures
//! trustworthy substitutes for the generators in every figure.

use std::path::PathBuf;

use bingo_repro::bench::{run_one, run_trace_one_configured, PrefetcherKind, RunScale};
use bingo_repro::sim::{SimResult, SystemConfig, TelemetryLevel, ThrottleMode};
use bingo_repro::workloads::{capture_workload, TraceWorkload, Workload};

const SCALE: RunScale = RunScale {
    instructions_per_core: 12_000,
    warmup_per_core: 8_000,
    seed: 42,
};

/// Fetch-ahead slack past the retirement budget (see `trace_capture`).
const SLACK: u64 = 256;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bingo-roundtrip-tests")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Captures `workload`, replays it with `kind`, and returns
/// (live result, replayed result) with the replay's ingest report
/// detached after asserting it is clean — the only field a live run does
/// not carry.
fn round_trip(workload: Workload, kind: PrefetcherKind) -> (SimResult, SimResult) {
    let cores = SystemConfig::paper().cores;
    let records = SCALE.warmup_per_core + SCALE.instructions_per_core + SLACK;
    let dir = scratch(workload.slug());
    capture_workload(workload, cores, SCALE.seed, records, 1 << 12, &dir)
        .unwrap_or_else(|e| panic!("capture of {workload} failed: {e}"));
    let trace = TraceWorkload::open(&dir).expect("open capture");
    let mut replayed = run_trace_one_configured(
        &trace,
        kind,
        SCALE,
        None,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    )
    .unwrap_or_else(|abort| panic!("replay of {workload} aborted: {abort}"));
    let ingest = replayed
        .ingest
        .take()
        .expect("replay attaches an ingest report");
    assert!(
        ingest.is_clean(),
        "{workload}: fresh capture quarantined: {ingest}"
    );
    assert!(
        ingest.delivered_records <= records * cores as u64,
        "{workload}: replay wrapped into a second pass"
    );
    let live = run_one(workload, kind, SCALE);
    std::fs::remove_dir_all(&dir).ok();
    (live, replayed)
}

#[test]
fn every_synthetic_workload_round_trips_bit_for_bit() {
    for w in Workload::ALL {
        let (live, replayed) = round_trip(w, PrefetcherKind::None);
        assert_eq!(
            live, replayed,
            "{w}: replay diverged from the live generators"
        );
    }
}

#[test]
fn every_stress_workload_round_trips_bit_for_bit() {
    for w in Workload::STRESS {
        let (live, replayed) = round_trip(w, PrefetcherKind::None);
        assert_eq!(
            live, replayed,
            "{w}: replay diverged from the live generators"
        );
    }
}

/// The round trip holds with a real prefetcher in the machine too: the
/// prefetcher sees the identical access stream, so coverage-relevant
/// state (cache contents, MSHR traffic, prefetch fills) matches exactly.
#[test]
fn round_trip_holds_under_bingo() {
    for w in [Workload::Streaming, Workload::Em3d] {
        let (live, replayed) = round_trip(w, PrefetcherKind::Bingo);
        assert_eq!(live, replayed, "{w}: Bingo replay diverged");
    }
}
