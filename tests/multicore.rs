//! Multi-core contention grid: equivalence, determinism, and fairness
//! invariants of the declarative mix path.
//!
//! The mix layer claims three things these tests pin down:
//!
//! 1. **Invisible at N=1** — a 1-core mix produces bit-for-bit the same
//!    `SimResult` as the classic single-core construction, for every
//!    workload (ALL + STRESS) and for both the no-prefetcher baseline
//!    and Bingo.
//! 2. **Homogeneous mixes collapse to the classic path** — a mix whose
//!    slots all carry the same assignment is the existing homogeneous
//!    sweep, at the paper's 4-core count.
//! 3. **Deterministic at any worker count and on repetition** — the mix
//!    grid's results do not depend on `BINGO_JOBS` or on how often the
//!    sweep runs, and the fairness metrics in the report recompute
//!    exactly from the per-core stats they summarize.

use bingo_bench::{
    parallel_map, run_mix_configured, run_mix_solo_configured, run_one_configured, MixAssignment,
    MixCell, MixConfig, ParallelHarness, PrefetcherKind, Pressure, RunScale,
};
use bingo_sim::{SimResult, System, SystemConfig, TelemetryLevel, ThrottleMode};
use bingo_workloads::Workload;

const SCALE: RunScale = RunScale {
    instructions_per_core: 15_000,
    warmup_per_core: 10_000,
    seed: 42,
};

/// The pre-mix single-core path: explicit 1-core machine, the workload's
/// own source vector, one prefetcher.
fn classic_single_core(workload: Workload, kind: PrefetcherKind) -> SimResult {
    let cfg = SystemConfig::paper_single_core();
    let sources = workload.sources(1, SCALE.seed);
    System::with_prefetchers(cfg, sources, |_| kind.build(), SCALE.instructions_per_core)
        .with_warmup(SCALE.warmup_per_core)
        .run()
}

/// A mix with `cores` identical slots.
fn homogeneous_mix(workload: Workload, kind: PrefetcherKind, cores: usize) -> MixConfig {
    MixConfig {
        name: "equiv".to_string(),
        cores: vec![
            MixAssignment {
                workload,
                prefetcher: kind,
                scale_percent: 100,
            };
            cores
        ],
        ramp: None,
    }
}

/// The heterogeneous mix the determinism tests run.
fn contention_mix() -> MixConfig {
    MixConfig::parse_str(
        "mix det\n\
         core 0 workload=streaming prefetcher=bingo\n\
         core 1 workload=stress-storm prefetcher=stride scale=50%\n\
         end\n",
    )
    .expect("valid mix")
    .remove(0)
}

#[test]
fn one_core_mix_is_bit_for_bit_the_classic_single_core_path() {
    let pairs: Vec<(Workload, PrefetcherKind)> = Workload::ALL
        .into_iter()
        .chain(Workload::STRESS)
        .flat_map(|w| [(w, PrefetcherKind::None), (w, PrefetcherKind::Bingo)])
        .collect();
    let mismatches: Vec<String> = parallel_map(4, pairs.len(), |i| {
        let (w, k) = pairs[i];
        let classic = classic_single_core(w, k);
        let mix = homogeneous_mix(w, k, 1);
        let via_mix = run_mix_configured(
            &mix,
            1,
            &Pressure::NONE,
            SCALE,
            None,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        )
        .expect("mix run completes");
        (classic != via_mix).then(|| format!("{} / {}", w.name(), k.name()))
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        mismatches.is_empty(),
        "1-core mix diverged from the classic path on: {mismatches:?}"
    );
}

#[test]
fn four_core_homogeneous_mix_matches_the_classic_path() {
    for kind in [PrefetcherKind::None, PrefetcherKind::Bingo] {
        let classic = run_one_configured(
            Workload::Streaming,
            kind,
            SCALE,
            None,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        )
        .expect("classic run completes");
        let mix = homogeneous_mix(Workload::Streaming, kind, 4);
        let via_mix = run_mix_configured(
            &mix,
            4,
            &Pressure::NONE,
            SCALE,
            None,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        )
        .expect("mix run completes");
        assert_eq!(
            classic,
            via_mix,
            "4-core homogeneous mix diverged from the classic path ({})",
            kind.name()
        );
    }
}

#[test]
fn mix_grid_is_deterministic_across_worker_counts() {
    let mix2 = contention_mix();
    let cells = [
        MixCell {
            mix: mix2.clone(),
            cores: 2,
            pressure: Pressure::NONE,
        },
        MixCell {
            mix: mix2,
            cores: 4,
            pressure: Pressure::CONSTRAINED,
        },
    ];
    let serial = ParallelHarness::with_jobs(SCALE, 1)
        .quiet()
        .try_evaluate_mix_grid(&cells)
        .into_complete();
    let parallel = ParallelHarness::with_jobs(SCALE, 8)
        .quiet()
        .try_evaluate_mix_grid(&cells)
        .into_complete();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let what = format!("{}@{} / {}", s.mix_name, s.cores, s.pressure.name);
        assert_eq!(
            s.result, p.result,
            "{what}: result differs across worker counts"
        );
        assert_eq!(
            s.fairness.aggregate_ipc.to_bits(),
            p.fairness.aggregate_ipc.to_bits(),
            "{what}: aggregate IPC differs"
        );
        assert_eq!(
            s.fairness.min_max_ipc_ratio.to_bits(),
            p.fairness.min_max_ipc_ratio.to_bits(),
            "{what}: fairness ratio differs"
        );
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&s.fairness.slowdowns),
            bits(&p.fairness.slowdowns),
            "{what}: slowdowns differ"
        );
    }
}

#[test]
fn repeated_mix_runs_are_bit_for_bit_equal() {
    let mix = contention_mix();
    for cores in [2usize, 4] {
        let run = || {
            run_mix_configured(
                &mix,
                cores,
                &Pressure::NONE,
                SCALE,
                None,
                TelemetryLevel::Off,
                ThrottleMode::Off,
            )
            .expect("mix run completes")
        };
        assert_eq!(run(), run(), "repeated {cores}-core mix run diverged");
    }
}

#[test]
fn fairness_metrics_recompute_from_per_core_stats() {
    let mix = contention_mix();
    let cells = [MixCell {
        mix: mix.clone(),
        cores: 2,
        pressure: Pressure::NONE,
    }];
    let evals = ParallelHarness::with_jobs(SCALE, 2)
        .quiet()
        .try_evaluate_mix_grid(&cells)
        .into_complete();
    let e = &evals[0];

    // Recompute every reported metric from the raw per-core stats and
    // independently re-run solos; all must match the report exactly.
    let ipcs = e.result.core_ipcs();
    assert_eq!(
        e.fairness.aggregate_ipc.to_bits(),
        ipcs.iter().sum::<f64>().to_bits(),
        "aggregate IPC is not the sum of per-core IPCs"
    );
    let max = ipcs.iter().cloned().fold(0.0_f64, f64::max);
    let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(
        e.fairness.min_max_ipc_ratio.to_bits(),
        (min / max).to_bits(),
        "min/max IPC ratio does not recompute"
    );
    for (slot, &mix_ipc) in ipcs.iter().enumerate() {
        let solo = run_mix_solo_configured(
            mix.assignment(slot),
            slot,
            &Pressure::NONE,
            SCALE,
            None,
            TelemetryLevel::Off,
            ThrottleMode::Off,
        )
        .expect("solo run completes");
        let solo_ipc: f64 = solo.core_ipcs().iter().sum();
        assert_eq!(
            e.fairness.slowdowns[slot].to_bits(),
            (solo_ipc / mix_ipc).to_bits(),
            "slot {slot} slowdown does not recompute from an independent solo run"
        );
    }
}
