//! Workload calibration: baseline LLC MPKI of every workload must land in
//! a band around the paper's Table II value (DESIGN.md §4's substitution
//! contract). Bands are generous (×/÷2) because the synthetic generators
//! reproduce statistics, not traces, and this test runs at a reduced
//! instruction budget.

use bingo_repro::sim::{NoPrefetcher, System, SystemConfig};
use bingo_repro::workloads::Workload;

fn baseline_mpki(w: Workload) -> f64 {
    let cfg = SystemConfig::paper();
    let r = System::new(
        cfg,
        w.sources(cfg.cores, 42),
        (0..cfg.cores)
            .map(|_| Box::new(NoPrefetcher) as Box<_>)
            .collect(),
        200_000,
    )
    .with_warmup(300_000)
    .run();
    r.llc_mpki()
}

#[test]
fn table2_mpki_bands() {
    for w in Workload::ALL {
        let mpki = baseline_mpki(w);
        let target = w.paper_mpki();
        assert!(
            mpki > target / 2.5 && mpki < target * 2.5,
            "{w}: baseline MPKI {mpki:.1} outside band around Table II's {target}"
        );
    }
}

#[test]
fn em3d_is_the_most_memory_intensive() {
    let em3d = baseline_mpki(Workload::Em3d);
    for w in [Workload::DataServing, Workload::SatSolver, Workload::Zeus] {
        assert!(
            em3d > 2.0 * baseline_mpki(w),
            "{w} should be far below em3d"
        );
    }
}

#[test]
fn sat_solver_is_the_least_memory_intensive() {
    let sat = baseline_mpki(Workload::SatSolver);
    for w in [Workload::DataServing, Workload::Em3d, Workload::Mix2] {
        assert!(sat < baseline_mpki(w), "{w} should exceed SAT Solver");
    }
}
