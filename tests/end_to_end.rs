//! End-to-end integration tests: full simulations spanning the simulator,
//! prefetcher, baseline, and workload crates.

use bingo_repro::baselines::{Bop, BopConfig, Sms, Vldp, VldpConfig};
use bingo_repro::prefetcher::{Bingo, BingoConfig};
use bingo_repro::sim::{CoverageReport, NoPrefetcher, Prefetcher, SimResult, System, SystemConfig};
use bingo_repro::workloads::Workload;

const INSTRUCTIONS: u64 = 120_000;
const WARMUP: u64 = 150_000;

fn run(workload: Workload, make: &dyn Fn() -> Box<dyn Prefetcher>) -> SimResult {
    let cfg = SystemConfig::paper();
    System::with_prefetchers(
        cfg,
        workload.sources(cfg.cores, 42),
        |_| make(),
        INSTRUCTIONS,
    )
    .with_warmup(WARMUP)
    .run()
}

#[test]
fn every_workload_runs_to_completion_without_prefetcher() {
    for w in Workload::ALL {
        let r = run(w, &|| Box::new(NoPrefetcher));
        assert_eq!(r.cores.len(), 4, "{w}");
        for (i, c) in r.cores.iter().enumerate() {
            assert_eq!(c.instructions, INSTRUCTIONS, "{w} core {i}");
            assert!(c.cycles > 0, "{w} core {i}");
        }
        assert!(r.llc.demand_misses > 0, "{w} must produce LLC misses");
        assert!(
            r.llc_mpki() > 0.3,
            "{w} MPKI {:.2} unreasonably low",
            r.llc_mpki()
        );
        assert!(
            r.llc_mpki() < 60.0,
            "{w} MPKI {:.2} unreasonably high",
            r.llc_mpki()
        );
    }
}

#[test]
fn bingo_reduces_misses_on_spatially_regular_workloads() {
    for w in [Workload::Em3d, Workload::Streaming, Workload::DataServing] {
        let base = run(w, &|| Box::new(NoPrefetcher));
        let pf = run(w, &|| Box::new(Bingo::new(BingoConfig::paper())));
        let report = CoverageReport::from_runs(&pf, &base);
        assert!(
            report.coverage > 0.25,
            "{w}: Bingo coverage {:.2} too low",
            report.coverage
        );
        assert!(
            pf.speedup_over(&base) > 1.0,
            "{w}: Bingo must not slow the system down"
        );
    }
}

#[test]
fn bingo_beats_bop_on_the_graph_workload() {
    let base = run(Workload::Em3d, &|| Box::new(NoPrefetcher));
    let bingo = run(Workload::Em3d, &|| {
        Box::new(Bingo::new(BingoConfig::paper()))
    });
    let bop = run(Workload::Em3d, &|| Box::new(Bop::new(BopConfig::paper())));
    let s_bingo = bingo.speedup_over(&base);
    let s_bop = bop.speedup_over(&base);
    assert!(
        s_bingo > s_bop,
        "paper ordering violated: Bingo {s_bingo:.3} vs BOP {s_bop:.3}"
    );
    assert!(s_bingo > 1.5, "em3d is the headline result ({s_bingo:.2}x)");
}

#[test]
fn bingo_at_least_matches_sms_on_servers() {
    // Bingo = SMS + the long event; on server workloads it must not lose.
    for w in [Workload::DataServing, Workload::SatSolver] {
        let base = run(w, &|| Box::new(NoPrefetcher));
        let bingo = run(w, &|| Box::new(Bingo::new(BingoConfig::paper())));
        let sms = run(w, &|| Box::new(Sms::default()));
        let s_bingo = bingo.speedup_over(&base);
        let s_sms = sms.speedup_over(&base);
        assert!(
            s_bingo >= s_sms - 0.02,
            "{w}: Bingo {s_bingo:.3} must not trail SMS {s_sms:.3}"
        );
    }
}

#[test]
fn zeus_gains_are_small_for_every_prefetcher() {
    // The paper's Zeus result: spatial prefetching barely helps.
    let base = run(Workload::Zeus, &|| Box::new(NoPrefetcher));
    for make in [
        (&|| Box::new(Bingo::new(BingoConfig::paper())) as Box<dyn Prefetcher>)
            as &dyn Fn() -> Box<dyn Prefetcher>,
        &|| Box::new(Vldp::new(VldpConfig::paper())),
        &|| Box::new(Bop::new(BopConfig::paper())),
    ] {
        let r = run(Workload::Zeus, make);
        let s = r.speedup_over(&base);
        assert!(
            (0.9..1.25).contains(&s),
            "Zeus speedup {s:.3} outside the 'barely helps' band"
        );
    }
}

#[test]
fn warmup_determinism_and_reset() {
    // Two identical runs must agree exactly, and warmup must not leak into
    // measured instruction counts.
    let a = run(Workload::Mix1, &|| {
        Box::new(Bingo::new(BingoConfig::paper()))
    });
    let b = run(Workload::Mix1, &|| {
        Box::new(Bingo::new(BingoConfig::paper()))
    });
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.llc.demand_misses, b.llc.demand_misses);
    assert_eq!(a.llc.pf_issued, b.llc.pf_issued);
    assert_eq!(a.cores[0].instructions, INSTRUCTIONS);
}

#[test]
fn prefetcher_storage_accounting_is_sane() {
    let bingo = Bingo::new(BingoConfig::paper());
    let kb = bingo.storage_bits() as f64 / 8.0 / 1024.0;
    assert!(
        (110.0..130.0).contains(&kb),
        "Bingo storage {kb:.1} KB (paper: 119)"
    );
    let bop = Bop::new(BopConfig::paper());
    assert!(
        bop.storage_bits() < bingo.storage_bits() / 50,
        "BOP is tiny"
    );
}

#[test]
fn mix_workloads_assign_different_programs_per_core() {
    // Mix cores must behave differently (different SPEC programs).
    let r = run(Workload::Mix1, &|| Box::new(NoPrefetcher));
    let ipcs: Vec<f64> = r.cores.iter().map(|c| c.ipc()).collect();
    let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ipcs.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min > 1.1,
        "mix cores should have distinct IPCs, got {ipcs:?}"
    );
}

/// The quiescent fast-forward — including the op-crank over the
/// run-length-encoded workload streams — must be unobservable on the
/// real workload suite: identical `SimResult`s with it on and off.
/// (The closure-source equivalence tests in `bingo-sim` never exercise
/// the crank, because closures report no op runs; `WorkloadSource` does.)
#[test]
fn fast_forward_is_bit_for_bit_on_real_workloads() {
    for w in [Workload::Em3d, Workload::DataServing, Workload::Mix1] {
        let cfg = SystemConfig::paper();
        let build = |ff: bool| {
            System::with_prefetchers(
                cfg,
                w.sources(cfg.cores, 42),
                |_| Box::new(Bingo::new(BingoConfig::paper())) as Box<dyn Prefetcher>,
                40_000,
            )
            .with_warmup(30_000)
            .with_fast_forward(ff)
        };
        let fast = build(true).run();
        let slow = build(false).run();
        assert_eq!(fast, slow, "fast-forward diverged on {w}");
    }
}
