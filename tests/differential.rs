//! Differential regression tests: the committed trace corpus plus a
//! fixed-seed fuzz smoke budget, run as ordinary `cargo test`.
//!
//! The corpus in `tests/corpus/` holds small, readable traces — targeted
//! scenarios (long-event replay, short-vote generalization, region-boundary
//! straddles, trigger/retrigger races, eviction-before-fill) plus the
//! shrunk counterexample produced by fault injection. Every trace is
//! replayed through the real Bingo under every fuzzer config variant and
//! diffed step-by-step against `SpecBingo`, and through the baseline
//! prefetchers against their invariant oracles. The full 500-trace budget
//! runs in release mode via `cargo run --release -p bingo-bench --bin
//! fuzz_diff` (the CI `differential` job); the smoke sweep here keeps the
//! same machinery honest in debug builds.
//!
//! On a fuzz divergence the failing trace is shrunk and written to
//! `target/differential/` (override with `BINGO_DIFF_DIR`) so it can be
//! reviewed and, once understood, committed to the corpus.

use std::fs;
use std::path::PathBuf;

use bingo::{Bingo, BingoConfig};
use bingo_baselines::{Bop, BopConfig, Sms, SmsConfig, StrideConfig, StridePrefetcher};
use bingo_bench::differential::{
    bingo_config_variants, diff_bingo, diff_bingo_instances, diff_bingo_throttled,
    diff_with_oracle, fuzz_baseline, fuzz_bingo, fuzz_bingo_throttled, shrink_bingo_mismatch,
};
use bingo_oracle::{
    BopOracle, GeneratorConfig, NextLineOracle, SmsOracle, SpecBingo, StrideOracle,
};
use bingo_sim::{FaultPlan, NextLinePrefetcher, PrefetchTrace};

/// Seeds per generator preset for the in-test smoke sweep. The release-mode
/// `fuzz_diff` binary covers 125 per preset (500 traces); debug builds get
/// a slice of the same seed space.
const SMOKE_SEEDS: u64 = 6;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn artifact_dir() -> PathBuf {
    std::env::var_os("BINGO_DIFF_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/differential"))
}

fn corpus_traces() -> Vec<(String, PrefetchTrace)> {
    let mut traces = Vec::new();
    for entry in fs::read_dir(corpus_dir()).expect("tests/corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "txt") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let trace = PrefetchTrace::parse_text(&text)
            .unwrap_or_else(|e| panic!("{name}: corpus trace does not parse: {e}"));
        traces.push((name, trace));
    }
    assert!(traces.len() >= 6, "corpus went missing? found {traces:?}");
    traces
}

#[test]
fn corpus_bingo_matches_spec_under_every_config_variant() {
    for (name, trace) in corpus_traces() {
        for (variant, cfg) in bingo_config_variants(trace.geometry()) {
            if let Err(m) = diff_bingo(&cfg, &trace) {
                panic!("{name} under {variant}: {m}");
            }
        }
    }
}

/// The subtractive-throttling contract on every committed corpus trace:
/// with the throttle level walked up and down a deterministic schedule,
/// the real Bingo's burst stays an ordered subsequence of the unthrottled
/// spec's at every step, matches it exactly at Full, and trigger
/// classification (hence training) is untouched.
#[test]
fn corpus_throttled_bingo_stays_a_subset_of_the_spec() {
    for (name, trace) in corpus_traces() {
        for (variant, cfg) in bingo_config_variants(trace.geometry()) {
            if let Err(m) = diff_bingo_throttled(&cfg, &trace) {
                panic!("{name} under {variant}: {m}");
            }
        }
    }
}

#[test]
fn fuzz_smoke_throttled_bingo_stays_a_subset_of_the_spec() {
    for (pi, gen) in GeneratorConfig::all().iter().enumerate() {
        let base = 31_000 + pi as u64 * SMOKE_SEEDS;
        if let Err(f) = fuzz_bingo_throttled(gen, base..base + SMOKE_SEEDS) {
            panic!("seed {} variant {}: {}", f.seed, f.variant, f.mismatch);
        }
    }
}

#[test]
fn corpus_baselines_satisfy_their_invariant_oracles() {
    for (name, trace) in corpus_traces() {
        let g = trace.geometry();

        let stride_cfg = StrideConfig::typical();
        let mut stride = StridePrefetcher::new(stride_cfg);
        let mut stride_oracle = StrideOracle::new(&stride_cfg);
        diff_with_oracle(&mut stride, &mut stride_oracle, &trace)
            .unwrap_or_else(|m| panic!("{name}: {m}"));

        let bop_cfg = BopConfig::paper();
        let mut bop = Bop::new(bop_cfg.clone());
        let mut bop_oracle = BopOracle::new(&bop_cfg);
        diff_with_oracle(&mut bop, &mut bop_oracle, &trace)
            .unwrap_or_else(|m| panic!("{name}: {m}"));

        let mut next = NextLinePrefetcher::new(4);
        let mut next_oracle = NextLineOracle::new(4);
        diff_with_oracle(&mut next, &mut next_oracle, &trace)
            .unwrap_or_else(|m| panic!("{name}: {m}"));

        let sms_cfg = SmsConfig {
            region: g,
            ..SmsConfig::paper()
        };
        let mut sms = Sms::new(sms_cfg);
        let mut sms_oracle = SmsOracle::new(g);
        diff_with_oracle(&mut sms, &mut sms_oracle, &trace)
            .unwrap_or_else(|m| panic!("{name}: {m}"));
    }
}

/// The committed fault trace must keep both of its properties: a clean
/// Bingo matches the spec on it, and the exact fault plan that produced it
/// (`FaultPlan::uniform(7, 0.1)`, recorded in the trace header and in
/// `fuzz_diff --fault`) still diverges. Losing the second property means
/// the harness can no longer detect the corruption it once caught.
#[test]
fn fault_divergence_trace_still_reproduces() {
    let text = fs::read_to_string(corpus_dir().join("fault_divergence.txt"))
        .expect("fault_divergence.txt is committed");
    let trace = PrefetchTrace::parse_text(&text).expect("parses");
    let cfg = BingoConfig {
        region: trace.geometry(),
        ..BingoConfig::paper()
    };

    diff_bingo(&cfg, &trace).expect("clean Bingo must match the spec on the fault trace");

    let mut faulty = Bingo::with_faults(cfg, FaultPlan::uniform(7, 0.1));
    let mut spec = SpecBingo::new(cfg);
    let diverged = diff_bingo_instances(&mut faulty, &mut spec, &trace);
    assert!(
        diverged.is_err(),
        "the recorded fault plan no longer diverges on the committed trace"
    );
}

#[test]
fn fuzz_smoke_bingo_matches_spec() {
    for (pi, gen) in GeneratorConfig::all().iter().enumerate() {
        let base = pi as u64 * SMOKE_SEEDS;
        if let Err(f) = fuzz_bingo(gen, base..base + SMOKE_SEEDS) {
            let variant_cfg = bingo_config_variants(f.trace.geometry())
                .into_iter()
                .find(|(n, _)| *n == f.variant)
                .map(|(_, c)| c)
                .expect("variant name from the same table");
            let shrunk = shrink_bingo_mismatch(&variant_cfg, &f.trace);
            let dir = artifact_dir();
            fs::create_dir_all(&dir).expect("create artifact dir");
            let path = dir.join("mismatch_bingo.txt");
            fs::write(
                &path,
                format!(
                    "# seed {} variant {}\n# {}\n{}",
                    f.seed,
                    f.variant,
                    f.mismatch,
                    shrunk.to_text()
                ),
            )
            .expect("write artifact");
            panic!(
                "seed {} variant {}: {}\nshrunk trace written to {}",
                f.seed,
                f.variant,
                f.mismatch,
                path.display()
            );
        }
    }
}

#[test]
fn fuzz_smoke_baselines_satisfy_their_oracles() {
    for (pi, gen) in GeneratorConfig::all().iter().enumerate() {
        let base = pi as u64 * SMOKE_SEEDS;
        let seeds = base..base + SMOKE_SEEDS;

        fuzz_baseline(gen, seeds.clone(), |_g| {
            let cfg = StrideConfig::typical();
            (
                Box::new(StridePrefetcher::new(cfg)),
                Box::new(StrideOracle::new(&cfg)),
            )
        })
        .unwrap_or_else(|f| panic!("stride seed {}: {}", f.seed, f.mismatch));

        fuzz_baseline(gen, seeds.clone(), |_g| {
            let cfg = BopConfig::paper();
            (
                Box::new(Bop::new(cfg.clone())),
                Box::new(BopOracle::new(&cfg)),
            )
        })
        .unwrap_or_else(|f| panic!("bop seed {}: {}", f.seed, f.mismatch));

        fuzz_baseline(gen, seeds.clone(), |_g| {
            (
                Box::new(NextLinePrefetcher::new(4)),
                Box::new(NextLineOracle::new(4)),
            )
        })
        .unwrap_or_else(|f| panic!("next-line seed {}: {}", f.seed, f.mismatch));

        fuzz_baseline(gen, seeds, |g| {
            let cfg = SmsConfig {
                region: g,
                ..SmsConfig::paper()
            };
            (Box::new(Sms::new(cfg)), Box::new(SmsOracle::new(g)))
        })
        .unwrap_or_else(|f| panic!("sms seed {}: {}", f.seed, f.mismatch));
    }
}
