//! Committed-corpus ingestion tests: every capture under
//! `tests/corpus/traces/` is re-decoded on plain `cargo test`, so a format
//! or loader regression that breaks previously-written traces (or stops
//! rejecting previously-rejected corruption) fails CI without needing the
//! fuzz driver.
//!
//! The corpus holds three pristine single-core captures (2 256 records
//! each, 256-record chunks) plus `corrupt-bitflip.btrc` — the minimal
//! corruption, a single flipped payload bit, which must trip the chunk
//! CRC: a typed error under the strict policy, a quarantined chunk under
//! the lenient one.

use std::io::Cursor;
use std::path::{Path, PathBuf};

use bingo_repro::bench::{
    run_trace_cell, run_trace_one_configured, CellOutcome, PrefetcherKind, RunScale,
};
use bingo_repro::sim::{Instr, TelemetryLevel, ThrottleMode};
use bingo_repro::trace::{Policy, TraceReader};
use bingo_repro::workloads::TraceWorkload;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/traces")
}

const PRISTINE: [&str; 3] = ["streaming.btrc", "em3d.btrc", "stress-chase.btrc"];
const CORRUPT: &str = "corrupt-bitflip.btrc";

fn decode(bytes: &[u8], policy: Policy) -> Result<Vec<Instr>, bingo_repro::trace::ReadError> {
    let mut reader = TraceReader::new(Cursor::new(bytes), policy)?;
    let mut out = Vec::new();
    while let Some(instr) = reader.next_instr()? {
        out.push(instr);
    }
    Ok(out)
}

/// Copies a corpus file into a scratch capture directory (as `core0.btrc`)
/// so it can be opened as a [`TraceWorkload`].
fn as_capture_dir(file: &str, scratch_name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bingo-corpus-tests")
        .join(format!("{scratch_name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::copy(corpus_dir().join(file), dir.join("core0.btrc")).expect("copy corpus file");
    dir
}

#[test]
fn corpus_is_present_and_complete() {
    for name in PRISTINE.iter().chain([CORRUPT].iter()) {
        let path = corpus_dir().join(name);
        assert!(path.is_file(), "missing corpus file {}", path.display());
    }
}

#[test]
fn pristine_corpus_decodes_identically_under_both_policies() {
    for name in PRISTINE {
        let bytes = std::fs::read(corpus_dir().join(name)).expect("read corpus file");
        let strict = decode(&bytes, Policy::Strict)
            .unwrap_or_else(|e| panic!("{name}: strict decode failed: {e}"));
        assert!(!strict.is_empty(), "{name}: no records decoded");

        let mut reader = TraceReader::new(Cursor::new(&bytes[..]), Policy::Strict).unwrap();
        let total = reader.header().expect("framed header").total_records;
        while reader.next_instr().unwrap().is_some() {}
        assert_eq!(strict.len() as u64, total, "{name}: header total disagrees");
        assert!(reader.report().is_clean(), "{name}: {}", reader.report());

        let lenient = decode(&bytes, Policy::Lenient)
            .unwrap_or_else(|e| panic!("{name}: lenient decode failed: {e}"));
        assert_eq!(strict, lenient, "{name}: policies disagree on clean bytes");
    }
}

#[test]
fn corrupt_corpus_trace_yields_typed_strict_error_with_offset() {
    let bytes = std::fs::read(corpus_dir().join(CORRUPT)).expect("read corpus file");
    let err = decode(&bytes, Policy::Strict).expect_err("a flipped bit must not decode cleanly");
    assert!(err.offset() > 0, "error should locate the damage: {err}");
    assert!(
        err.to_string().contains("byte"),
        "typed errors carry their byte offset: {err}"
    );
}

#[test]
fn corrupt_corpus_trace_is_quarantined_under_lenient_policy() {
    let bytes = std::fs::read(corpus_dir().join(CORRUPT)).expect("read corpus file");
    let mut reader = TraceReader::new(Cursor::new(&bytes[..]), Policy::Lenient).unwrap();
    let mut delivered = 0u64;
    while reader
        .next_instr()
        .expect("lenient never errors on bit flips")
        .is_some()
    {
        delivered += 1;
    }
    let report = reader.report();
    assert!(delivered > 0, "the undamaged chunks must still replay");
    assert!(
        report.quarantined_records > 0,
        "the damaged chunk must be quarantined: {report}"
    );
    // The flipped bit damages exactly one 256-record chunk.
    assert_eq!(report.quarantined_records, 256, "{report}");
    assert_eq!(report.skipped_chunks, 1, "{report}");
}

#[test]
fn corpus_trace_drives_a_simulation_end_to_end() {
    let dir = as_capture_dir(PRISTINE[0], "sim");
    let trace = TraceWorkload::open(&dir).expect("open corpus capture");
    let scale = RunScale {
        instructions_per_core: 1_500,
        warmup_per_core: 500,
        seed: 0,
    };
    let mut result = run_trace_one_configured(
        &trace,
        PrefetcherKind::NextLine(1),
        scale,
        None,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    )
    .expect("corpus replay completes");
    let ingest = result.ingest.take().expect("replay attaches a report");
    assert!(ingest.is_clean(), "pristine corpus quarantined: {ingest}");
    assert!(
        result.llc.demand_misses > 0,
        "the replay must exercise the LLC"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_corpus_trace_fails_strict_cell_but_completes_lenient_sim() {
    let dir = as_capture_dir(CORRUPT, "corrupt-sim");
    let scale = RunScale {
        instructions_per_core: 1_000,
        warmup_per_core: 300,
        seed: 0,
    };

    let strict = TraceWorkload::open(&dir).expect("open corpus capture");
    match run_trace_cell(
        &strict,
        PrefetcherKind::None,
        scale,
        None,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    ) {
        CellOutcome::Panicked { message } => {
            assert!(
                message.contains("byte"),
                "strict cell failure should carry the typed offset: {message}"
            );
        }
        other => panic!("strict replay of corrupt bytes must fail its cell, got {other:?}"),
    }

    let lenient =
        TraceWorkload::with_policy(&dir, Policy::Lenient).expect("open corpus capture leniently");
    match run_trace_cell(
        &lenient,
        PrefetcherKind::None,
        scale,
        None,
        TelemetryLevel::Off,
        ThrottleMode::Off,
    ) {
        CellOutcome::Ok(result) => {
            let ingest = result.ingest.as_ref().expect("replay attaches a report");
            assert!(
                ingest.quarantined_records > 0,
                "the damage must be visible in the result: {ingest}"
            );
        }
        other => panic!("lenient replay must complete, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
