//! Multi-core chaos property suite: the robustness contract of the
//! per-core throttle under live perturbation.
//!
//! Every cell of a seeded (chaos kind × mix × pressure) grid asserts:
//!
//! 1. **Bounded slowdown** — with `BINGO_THROTTLE=percore`, no core
//!    falls more than [`SLOWDOWN_BOUND`] below the prefetcher-off run of
//!    the *same* chaos scenario. Prefetching plus throttling may not
//!    turn a perturbation into a rout.
//! 2. **Recovery** — once the last perturbation window closes, per-core
//!    controllers walk back up the ladder; a run that ends in a calm
//!    stretch ends at `Full` aggressiveness on every core whose traffic
//!    deserves it. (The epoch-bounded walk itself — `UPGRADE_AFTER`
//!    good epochs per rung, probe backoff capped at
//!    `MAX_UPGRADE_PATIENCE` — is pinned by the sim crate's throttle
//!    unit tests; here we assert the end state through a real machine.)
//! 3. **Determinism** — one seed names one perturbation schedule:
//!    replaying a chaos run is bit-for-bit identical, and a different
//!    seed genuinely perturbs differently.
//! 4. **Off-path invisibility** — an injector whose first onset lies
//!    past the end of the run changes nothing: the result equals the
//!    no-injector run bit-for-bit (this also pins that the run loop's
//!    fast-forward, which `with_chaos` disables, is result-invariant).

use std::path::Path;

use bingo_bench::{parallel_map, run_mix_qos, MixConfig, PrefetcherKind, Pressure, RunScale};
use bingo_sim::{
    ChaosInjector, ChaosKind, ChaosPlan, InstrSource, PhaseFlipSource, SimResult, System,
    SystemConfig, ThrottleMode,
};
use bingo_workloads::Workload;

const SCALE: RunScale = RunScale {
    instructions_per_core: 150_000,
    warmup_per_core: 100_000,
    seed: 42,
};

/// Committed chaos seed (mirrors `bingo_bench::DEFAULT_CHAOS_SEED`): the
/// grid is deterministic, so one seed pins the whole suite.
const CHAOS_SEED: u64 = 0xB1A60;

/// Worst tolerated per-core IPC ratio versus the prefetcher-off run of
/// the same chaos scenario.
const SLOWDOWN_BOUND: f64 = 0.90;

fn committed_mix(name: &str) -> MixConfig {
    MixConfig::parse_file(Path::new("configs/mixes/contention.mix"))
        .expect("committed mix config parses")
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("contention.mix does not declare {name:?}"))
}

/// The same mix with every prefetcher replaced by `none` — the safety
/// baseline each chaos cell is measured against.
fn prefetcher_off(mix: &MixConfig) -> MixConfig {
    let mut off = mix.clone();
    for slot in &mut off.cores {
        slot.prefetcher = PrefetcherKind::None;
    }
    off
}

/// A single-kind plan at the standard cadence, so each failure mode is
/// exercised in isolation as well as in the full rotation.
fn plan_of(kinds: Vec<ChaosKind>, seed: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        period: 20_000,
        window: 4_000,
        kinds,
    }
}

fn run_chaos(
    mix: &MixConfig,
    pressure: &Pressure,
    throttle: ThrottleMode,
    plan: Option<ChaosPlan>,
) -> SimResult {
    run_mix_qos(
        mix,
        2,
        pressure,
        SCALE,
        None,
        throttle,
        None,
        plan.map(ChaosInjector::new),
    )
    .expect("chaos cell completes")
}

#[test]
fn every_chaos_cell_keeps_every_core_within_the_slowdown_bound() {
    let mix = committed_mix("polite-vs-storm");
    let off_mix = prefetcher_off(&mix);
    let plans: Vec<(String, Vec<ChaosKind>)> = ChaosKind::ALL
        .iter()
        .map(|k| (k.label().to_string(), vec![*k]))
        .chain([("all".to_string(), ChaosKind::ALL.to_vec())])
        .collect();
    let pressures = [Pressure::NONE, Pressure::CONSTRAINED];
    let cells: Vec<(usize, usize)> = (0..plans.len())
        .flat_map(|pi| (0..pressures.len()).map(move |qi| (pi, qi)))
        .collect();

    let violations: Vec<String> = parallel_map(4, cells.len(), |i| {
        let (pi, qi) = cells[i];
        let plan = plan_of(plans[pi].1.clone(), CHAOS_SEED);
        let with_pf = run_chaos(
            &mix,
            &pressures[qi],
            ThrottleMode::Percore,
            Some(plan.clone()),
        );
        let without_pf = run_chaos(&off_mix, &pressures[qi], ThrottleMode::Off, Some(plan));
        let mut bad = Vec::new();
        for (core, (a, b)) in with_pf
            .core_ipcs()
            .iter()
            .zip(without_pf.core_ipcs())
            .enumerate()
        {
            let ratio = a / b;
            if ratio < SLOWDOWN_BOUND {
                bad.push(format!(
                    "chaos={} pressure={} core{core}: {ratio:.3}x of prefetcher-off",
                    plans[pi].0, pressures[qi].name
                ));
            }
        }
        bad
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        violations.is_empty(),
        "per-core throttling broke the bounded-slowdown contract under chaos:\n{}",
        violations.join("\n")
    );
}

#[test]
fn controllers_recover_to_full_aggressiveness_after_the_perturbation_ends() {
    // An instruction-domain perturbation with a long calm tail: each
    // core runs a storm phase of F instructions, then em3d for 3F.
    // Nesting two [`PhaseFlipSource`]s produces the asymmetric split —
    // the outer source alternates [storm F | em3d F] against em3d at
    // 2F, so one flip of the outer source ends the storm for good.
    //
    // The storm phase must provoke at least one degrade per core
    // (storm accuracy is far below `ACCURACY_FLOOR`), and the em3d
    // tail — high-traffic, ~0.97 prefetch accuracy — must walk the
    // controller back to `Full` through the upgrade hysteresis
    // (`UPGRADE_AFTER` good epochs per rung plus the probe window)
    // before the run ends. A symmetric single flip cannot prove this:
    // upgrades need roughly four good epochs per rung while degrades
    // need two bad ones, so the tail has to outweigh the storm.
    const F: u64 = 100_000;
    let mut cfg = SystemConfig::paper().with_cores(2);
    Pressure::CONSTRAINED.apply(&mut cfg);
    let sources: Vec<Box<dyn InstrSource>> = (0..2)
        .map(|i| {
            let storm = Workload::StressStorm.source_for_core(i, SCALE.seed);
            let calm_inner = Workload::Em3d.source_for_core(i, SCALE.seed);
            let calm_outer = Workload::Em3d.source_for_core(i, SCALE.seed + 1);
            let inner = PhaseFlipSource::new(storm, calm_inner, F);
            Box::new(PhaseFlipSource::new(Box::new(inner), calm_outer, 2 * F))
                as Box<dyn InstrSource>
        })
        .collect();
    let r = System::with_prefetchers(
        cfg,
        sources,
        |_| PrefetcherKind::Bingo.build(),
        4 * F - 20_000,
    )
    .with_warmup(20_000)
    .with_throttle(ThrottleMode::Percore)
    .run();
    let qos = r.qos.expect("percore run attaches a QoS report");
    for (i, c) in qos.cores.iter().enumerate() {
        // Non-vacuity first: a controller that never left `Full` would
        // make the recovery claim below meaningless.
        assert!(
            c.degrades > 0,
            "core {i}'s controller never degraded during the storm phase; \
             the recovery property is vacuous at this scale/seed"
        );
        assert_eq!(
            c.final_level, 0,
            "core {i} ended at ladder level {} instead of Full after the \
             storm ended ({} degrades, {} upgrades over {} epochs)",
            c.final_level, c.degrades, c.upgrades, c.epochs
        );
    }
}

#[test]
fn chaos_runs_replay_bit_for_bit_and_seeds_matter() {
    let mix = committed_mix("polite-vs-storm");
    let run = |seed: u64| {
        run_chaos(
            &mix,
            &Pressure::CONSTRAINED,
            ThrottleMode::Percore,
            Some(plan_of(ChaosKind::ALL.to_vec(), seed)),
        )
    };
    let a = run(CHAOS_SEED);
    let b = run(CHAOS_SEED);
    assert_eq!(a, b, "same chaos seed must replay bit-for-bit");
    let c = run(CHAOS_SEED ^ 1);
    assert_ne!(
        a, c,
        "a different chaos seed produced an identical run — the injector \
         is not actually perturbing anything"
    );
}

#[test]
fn an_injector_that_never_fires_is_bit_for_bit_invisible() {
    let mix = committed_mix("polite-vs-storm");
    for throttle in [ThrottleMode::Off, ThrottleMode::Percore] {
        let calm = run_mix_qos(
            &mix,
            2,
            &Pressure::CONSTRAINED,
            SCALE,
            None,
            throttle,
            None,
            None,
        )
        .expect("calm run completes");
        // First onset far past any plausible cycle count for this scale.
        let dormant = ChaosPlan {
            seed: CHAOS_SEED,
            period: u64::MAX / 2,
            window: 1,
            kinds: ChaosKind::ALL.to_vec(),
        };
        let with_dormant = run_chaos(&mix, &Pressure::CONSTRAINED, throttle, Some(dormant));
        assert_eq!(
            calm, with_dormant,
            "an injector with no onsets changed a {throttle} run — either the \
             injector off-path or the fast-forward it disables is not \
             result-invariant"
        );
    }
}
