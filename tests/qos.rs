//! Per-core QoS acceptance: the ISSUE 10 headline claim, asserted over
//! the committed mix configs.
//!
//! PR 8 measured that the chip-wide feedback ladder starves the polite
//! core of `polite-vs-storm` (−5.2% IPC at full scale) because the storm
//! core's wasted prefetches walk *every* core's prefetcher down the
//! ladder. The per-core throttle must recover that loss — the polite
//! core's controller sees its own high accuracy and stays at `Full` —
//! without giving back the aggregate win the chip-wide throttle earned
//! by clamping the storm.
//!
//! The scale here is the smallest at which the starvation dynamic
//! manifests (the storm needs enough instructions past warmup for its
//! waste to trip the ladder); `fig_qos` reports the same experiment at
//! full scale.

use std::path::Path;

use bingo_bench::{run_mix_configured, run_mix_qos, MixConfig, Pressure, RunScale};
use bingo_sim::{SimResult, TelemetryLevel, ThrottleMode};

const SCALE: RunScale = RunScale {
    instructions_per_core: 400_000,
    warmup_per_core: 600_000,
    seed: 42,
};

/// Loads one mix from the committed contention config — the acceptance
/// criterion is stated over the checked-in mixes, not ad-hoc ones.
fn committed_mix(name: &str) -> MixConfig {
    MixConfig::parse_file(Path::new("configs/mixes/contention.mix"))
        .expect("committed mix config parses")
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("contention.mix does not declare {name:?}"))
}

/// Aggregate throughput under the mix-fairness convention: the sum of
/// per-core IPCs (what PR 8's published starvation verdict used).
fn sum_ipc(r: &SimResult) -> f64 {
    r.core_ipcs().iter().sum()
}

#[test]
fn percore_recovers_the_polite_core_without_losing_aggregate_ipc() {
    let mix = committed_mix("polite-vs-storm");
    let pressure = Pressure::CONSTRAINED;
    let run = |throttle: ThrottleMode| -> SimResult {
        run_mix_configured(
            &mix,
            2,
            &pressure,
            SCALE,
            None,
            TelemetryLevel::Off,
            throttle,
        )
        .expect("qos acceptance cell completes")
    };
    let off = run(ThrottleMode::Off);
    let feedback = run(ThrottleMode::Feedback);
    let percore = run(ThrottleMode::Percore);

    let polite_off = off.core_ipcs()[0];
    let polite_feedback = feedback.core_ipcs()[0];
    let polite_percore = percore.core_ipcs()[0];

    // The premise: the chip-wide ladder really does starve the polite
    // core at this scale — otherwise the recovery below proves nothing.
    assert!(
        polite_feedback < 0.99 * polite_off,
        "premise failed: chip-wide feedback does not starve the polite core \
         here (off {polite_off:.4}, feedback {polite_feedback:.4}); \
         the recovery claim is vacuous at this scale"
    );

    // The claim, clause 1: per-core throttling keeps the polite core
    // within 1% of its unthrottled IPC.
    assert!(
        polite_percore >= 0.99 * polite_off,
        "per-core throttle starves the polite core: off {polite_off:.4}, \
         percore {polite_percore:.4} ({:.1}%)",
        100.0 * polite_percore / polite_off
    );

    // The claim, clause 2: no aggregate-IPC giveback versus the
    // chip-wide feedback arm.
    assert!(
        sum_ipc(&percore) >= sum_ipc(&feedback),
        "per-core throttle lost aggregate IPC: feedback {:.4}, percore {:.4}",
        sum_ipc(&feedback),
        sum_ipc(&percore)
    );

    // The QoS report behind the verdict is well-formed: one row per
    // core, both controllers judged epochs, attribution is consistent,
    // and the accuracy split matches the story — the polite core's
    // prefetches are mostly used, the storm's mostly wasted.
    let qos = percore
        .qos
        .as_ref()
        .expect("percore run attaches a QoS report");
    assert_eq!(qos.cores.len(), 2, "one QoS row per core");
    for (i, c) in qos.cores.iter().enumerate() {
        assert!(c.demand_accesses > 0, "core {i} saw no attributed demand");
        assert!(c.epochs > 0, "core {i}'s controller never judged an epoch");
        assert!(
            c.pf_used <= c.pf_issued,
            "core {i} used more prefetches than it issued"
        );
    }
    assert!(
        qos.watchdog_epochs > 0,
        "the watchdog never judged an epoch"
    );
    let accuracy = |i: usize| qos.cores[i].pf_used as f64 / qos.cores[i].pf_issued.max(1) as f64;
    assert!(
        accuracy(0) > accuracy(1),
        "the polite core's prefetch accuracy ({:.2}) should beat the storm's ({:.2})",
        accuracy(0),
        accuracy(1)
    );
}

#[test]
fn qos_report_attaches_only_to_percore_runs() {
    let mix = committed_mix("polite-vs-storm");
    let pressure = Pressure::CONSTRAINED;
    let small = RunScale {
        instructions_per_core: 15_000,
        warmup_per_core: 10_000,
        seed: 42,
    };
    let run = |throttle: ThrottleMode| -> SimResult {
        run_mix_configured(
            &mix,
            2,
            &pressure,
            small,
            None,
            TelemetryLevel::Off,
            throttle,
        )
        .expect("cell completes")
    };
    for mode in [
        ThrottleMode::Off,
        ThrottleMode::Static,
        ThrottleMode::Feedback,
    ] {
        assert!(
            run(mode).qos.is_none(),
            "{mode} run must not attach a QoS report"
        );
    }
    let qos = run(ThrottleMode::Percore)
        .qos
        .expect("percore run attaches a QoS report");
    assert_eq!(qos.cores.len(), 2, "one QoS row per core");
}

#[test]
fn qos_slo_override_is_invisible_off_the_percore_path() {
    // `SystemConfig::qos_slo` only parameterizes the percore watchdog;
    // setting it must not perturb the other throttle modes by a bit.
    let mix = committed_mix("polite-vs-storm");
    let small = RunScale {
        instructions_per_core: 15_000,
        warmup_per_core: 10_000,
        seed: 42,
    };
    for mode in [ThrottleMode::Off, ThrottleMode::Feedback] {
        let plain = run_mix_configured(
            &mix,
            2,
            &Pressure::CONSTRAINED,
            small,
            None,
            TelemetryLevel::Off,
            mode,
        )
        .expect("cell completes");
        let with_slo = run_mix_qos(
            &mix,
            2,
            &Pressure::CONSTRAINED,
            small,
            None,
            mode,
            Some(0.5),
            None,
        )
        .expect("cell completes");
        assert_eq!(plain, with_slo, "qos_slo changed a {mode} run");
    }
}
